"""Evaluation metrics: recall@k curves and AUCCR (Section 6.1.5).

The paper reports *corruption-recall curves*: for a ranked deletion
sequence and a ground-truth set of K corrupted training records,
``r_k`` is the fraction of true corruptions among the first ``k``
deletions, for ``k = 1..K``.  AUCCR is their normalized average
``(2/K) Σ_k r_k`` (the factor 2 normalizes against the perfect curve's
area of ~1/2).  We additionally provide :func:`auccr_normalized`, which
divides by the perfect curve's AUCCR so a flawless ranking scores exactly
1.0 regardless of K.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def recall_curve(
    removal_order: Sequence[int],
    corrupted_indices: Sequence[int],
    k_max: int | None = None,
) -> np.ndarray:
    """``r_k`` for k = 1..k_max (default: K = number of corruptions).

    ``removal_order`` may be shorter than ``k_max``; the curve is flat once
    the sequence is exhausted (no further corruptions can be found).
    """
    corrupted = set(int(i) for i in corrupted_indices)
    if not corrupted:
        raise ValueError("corrupted_indices must be non-empty")
    k = len(corrupted) if k_max is None else int(k_max)
    if k <= 0:
        raise ValueError(f"k_max must be positive, got {k}")
    curve = np.zeros(k)
    found = 0
    for position in range(k):
        if position < len(removal_order) and int(removal_order[position]) in corrupted:
            found += 1
        curve[position] = found / len(corrupted)
    return curve


def auccr(recalls: np.ndarray) -> float:
    """The paper's AUCCR: ``(2/K) Σ_k r_k``."""
    recalls = np.asarray(recalls, dtype=np.float64)
    if recalls.size == 0:
        raise ValueError("empty recall curve")
    return float(2.0 * recalls.mean())


def auccr_normalized(recalls: np.ndarray) -> float:
    """AUCCR divided by the perfect curve's AUCCR (flawless ranking = 1.0)."""
    recalls = np.asarray(recalls, dtype=np.float64)
    k = recalls.size
    perfect = np.arange(1, k + 1, dtype=np.float64) / k
    return float(recalls.mean() / perfect.mean())


def precision_at_k(
    removal_order: Sequence[int], corrupted_indices: Sequence[int], k: int
) -> float:
    """Fraction of the first ``k`` removals that are true corruptions."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    corrupted = set(int(i) for i in corrupted_indices)
    top = [int(i) for i in removal_order[:k]]
    if not top:
        return 0.0
    return sum(1 for index in top if index in corrupted) / len(top)


def recall_at_k(
    removal_order: Sequence[int], corrupted_indices: Sequence[int], k: int
) -> float:
    """Fraction of true corruptions found within the first ``k`` removals."""
    corrupted = set(int(i) for i in corrupted_indices)
    if not corrupted:
        raise ValueError("corrupted_indices must be non-empty")
    top = set(int(i) for i in removal_order[:k])
    return len(top & corrupted) / len(corrupted)
