"""The Rain debugger: the train-rank-fix loop (Section 5.1).

Given a database (queried relations + a registered model), the model's
training set, and complaint cases (query + complaints, possibly several
queries sharing the model), :class:`RainDebugger` iterates:

1. **train** — (re)fit the model on the active training records,
   warm-started from the previous parameters;
2. **execute** — rerun every complained-about query in debug mode,
   capturing provenance;
3. **rank** — score the active training records with the configured
   approach (Loss / InfLoss / TwoStep / Holistic);
4. **fix** — delete the top-k records and repeat.

The output is the ranked deletion sequence ``D`` plus per-iteration
diagnostics and a Train/Execute/Encode/Rank timing breakdown (Figures 5
and 12 of the paper).

Because θ* barely moves after a top-k deletion, the driver carries CG
state between iterations (``warm_start_cg=True``, the default): rankers
seed each solve with the previous iteration's solution via
:class:`~repro.core.rankers.WarmStartState`, and per-sample gradients are
cached across iterations, invalidated wholesale when refitting moves θ*
and by row-slicing when only records were deleted.

The ``method="auto"`` heuristic matches Section 5.1: probe the TwoStep ILP
for the number of optimal solutions; if the fix is unique, use TwoStep,
otherwise use Holistic.

Multi-query serving: with ``n_workers >= 1`` (or ``REPRO_N_WORKERS`` set)
the execute stage dedupes executions by plan fingerprint — each distinct
query runs once per iteration and its compiled provenance pool is frozen
once and shared across all cases over that plan — and shard-aware rankers
fan per-case encode/solve work out to a thread pool
(:mod:`~repro.core.sharding`).  Worker count never changes removal
orders: shard partitions are worker-invariant and the run RNG is only
consumed on the driver thread in case order.  ``provenance="tree"`` is
the golden reference path and always runs serially.

Async pipeline: with ``async_pipeline=True`` (or ``REPRO_ASYNC=1``) each
iteration is an explicit stage graph — train and execute run on a
dedicated FIFO stage thread (:class:`~repro.core.sharding.PipelineState`)
while the driver ranks, selects, and drains iteration ``k``'s deferred
diagnostics.  The stage chain ``train(k) → execute(k) → rank(k) →
select(k) → train(k+1)`` is strict (the next refit needs the top-k
deletion), so the overlap comes from within-stage decomposition:

- complaint *satisfaction* (``all_satisfied`` materializes provenance
  trees and never touches the model) is pure diagnostics when
  ``stop_when_satisfied=False``, so it is deferred and evaluated while
  the stage thread is already refitting and re-executing for ``k+1``;
- complaint-free rankers (Loss, InfLoss — ``uses_case_results=False``)
  rank on the driver concurrently with the execute stage, which they
  only need for the satisfied flag.

Removal orders stay bit-identical to the serial loop at every worker
count: stages never consume the run RNG, the FIFO stage thread orders
every model mutation exactly as the serial loop does, and iteration
``k+1`` is only prefetched when the loop will actually continue (so the
final fitted parameters match too).  ``provenance="tree"`` pins the
pipeline off, exactly like it pins the worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..complaints.complaint import (
    ComplaintCase,
    all_satisfied,
    all_satisfied_columnar,
)
from ..errors import DebuggingError, ILPError
from ..ilp.encode import make_encoder
from ..ilp.solver import enumerate_optima
from ..influence.functions import InfluenceAnalyzer, PerSampleGradCache
from ..relational.algebra import Plan
from ..relational.executor import Executor, QueryResult
from ..relational.schema import Database
from ..relational.sql import plan_sql
from ..utils import Stopwatch, argsort_desc, as_rng
from .rankers import IterationContext, Ranker, WarmStartState, make_ranker
from .sharding import PipelineState, execute_cases, resolve_async, resolve_workers


@dataclass
class IterationRecord:
    """Diagnostics for one train-rank-fix iteration."""

    iteration: int
    removed: list[int]
    complaints_satisfied: bool
    diagnostics: dict = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)


@dataclass
class DebugReport:
    """The debugger's output: the deletion sequence plus diagnostics."""

    method: str
    removal_order: list[int]
    iterations: list[IterationRecord]
    timings: dict[str, float]
    stopped_reason: str

    def recall_curve(self, corrupted_indices, k_max: int | None = None) -> np.ndarray:
        from .metrics import recall_curve

        return recall_curve(self.removal_order, corrupted_indices, k_max=k_max)

    def auccr(self, corrupted_indices) -> float:
        from .metrics import auccr_normalized, recall_curve

        return auccr_normalized(recall_curve(self.removal_order, corrupted_indices))

    def mean_iteration_time(self, label: str) -> float:
        per_iteration = [
            record.timings.get(label, 0.0) for record in self.iterations
        ]
        return float(np.mean(per_iteration)) if per_iteration else 0.0


class RainDebugger:
    """Complaint-driven training-data debugging for Query 2.0."""

    def __init__(
        self,
        database: Database,
        model_name: str,
        X_train: np.ndarray,
        y_train: np.ndarray,
        cases: list[ComplaintCase],
        method: str = "auto",
        damping: float = 1e-4,
        rng=0,
        ranker_kwargs: dict | None = None,
        fit_kwargs: dict | None = None,
        stop_when_satisfied: bool = False,
        cg_max_iter: int | None = None,
        cg_tol: float = 1e-8,
        warm_start_cg: bool = True,
        provenance: str = "compiled",
        n_workers: int | None = None,
        shard: str = "cases",
        async_pipeline: bool | None = None,
    ) -> None:
        if not cases and method in ("auto", "twostep", "holistic"):
            raise DebuggingError(
                f"method {method!r} is complaint-driven and needs at least one "
                "complaint case"
            )
        self.database = database
        self.model_name = model_name
        self.model = database.model(model_name)
        self.X_train = np.asarray(X_train, dtype=np.float64)
        self.y_train = np.asarray(y_train)
        if self.X_train.shape[0] != self.y_train.shape[0]:
            raise DebuggingError(
                f"training X has {self.X_train.shape[0]} rows, y has "
                f"{self.y_train.shape[0]}"
            )
        self.cases = list(cases)
        self.requested_method = method
        self.damping = float(damping)
        self.rng = as_rng(rng)
        self.ranker_kwargs = dict(ranker_kwargs or {})
        self.fit_kwargs = dict(fit_kwargs or {})
        self.stop_when_satisfied = bool(stop_when_satisfied)
        self.cg_max_iter = cg_max_iter
        self.cg_tol = float(cg_tol)
        self.warm_start_cg = bool(warm_start_cg)
        if provenance not in ("compiled", "tree"):
            raise DebuggingError(
                f"provenance must be 'compiled' or 'tree', got {provenance!r}"
            )
        self.provenance = provenance
        if shard != "cases":
            raise DebuggingError(
                f"shard must be 'cases' (the only supported axis), got {shard!r}"
            )
        self.shard = shard
        # Sharded serving: 0 = the serial loop (untouched), >= 1 = the
        # worker-pool path (None defers to REPRO_N_WORKERS).  The tree
        # representation is the golden reference and never shares or
        # dedupes executions, so it pins the worker count to 0.
        self.n_workers = resolve_workers(n_workers)
        # Async pipeline: False = the serial loop (untouched), True = the
        # stage-graph loop (None defers to REPRO_ASYNC).  Tree provenance
        # pins both knobs off — it is the golden reference path.
        self.async_pipeline = resolve_async(async_pipeline)
        if self.provenance == "tree":
            self.n_workers = 0
            self.async_pipeline = False
        # Per-sample gradients survive across iterations while θ* is
        # unchanged; top-k deletions only slice rows out of the cached matrix.
        self._grad_cache = PerSampleGradCache()

        self.executor = Executor(database)
        self._plans: list[Plan] = [self._resolve_plan(case.query) for case in cases]

    def _resolve_plan(self, query) -> Plan:
        if isinstance(query, Plan):
            return query
        if isinstance(query, str):
            return plan_sql(query, self.database)
        raise DebuggingError(
            f"query must be SQL text or a Plan, got {type(query).__name__}"
        )

    # -- method selection (Section 5.1 heuristic) ------------------------------------

    def choose_method(self) -> str:
        """'twostep' when every case has a unique minimal fix, else 'holistic'."""
        if self.requested_method != "auto":
            return self.requested_method
        self._ensure_fitted()
        for case, plan in zip(self.cases, self._plans):
            result = self.executor.execute(plan, debug=True, provenance=self.provenance)
            try:
                encoder = make_encoder(result)
                encoder.add_complaints(case.complaints)
                solutions = enumerate_optima(
                    encoder.program, max_solutions=2, time_limit=10.0
                )
            except ILPError:
                return "holistic"
            if len(solutions) != 1:
                return "holistic"
        return "twostep"

    def _ensure_fitted(self) -> None:
        if not self.model.is_fitted:
            self.model.fit(
                self.X_train, self.y_train, warm_start=False, **self.fit_kwargs
            )

    # -- the train-rank-fix loop ----------------------------------------------------------

    def run(
        self,
        max_removals: int,
        k_per_iteration: int = 10,
    ) -> DebugReport:
        """Delete up to ``max_removals`` records, ``k_per_iteration`` at a time."""
        if max_removals <= 0:
            raise DebuggingError(f"max_removals must be positive, got {max_removals}")
        if k_per_iteration <= 0:
            raise DebuggingError(
                f"k_per_iteration must be positive, got {k_per_iteration}"
            )
        method = self.choose_method()
        ranker = make_ranker(method, **self.ranker_kwargs)
        if self.async_pipeline:
            return self._run_async(method, ranker, max_removals, k_per_iteration)
        return self._run_serial(method, ranker, max_removals, k_per_iteration)

    # -- shared stage helpers ---------------------------------------------------------

    def _train_stage(self, X_active: np.ndarray, y_active: np.ndarray) -> None:
        self.model.fit(
            X_active,
            y_active,
            warm_start=self.model.is_fitted,
            **self.fit_kwargs,
        )

    def _execute_stage(self):
        """One execute stage: every case's debug result, plus dedup stats."""
        if self.n_workers >= 1:
            # Sharded serving: one execution per distinct plan fingerprint,
            # shared across its cases; distinct plans run on the worker pool.
            return execute_cases(
                self.executor,
                self.cases,
                self._plans,
                self.provenance,
                self.n_workers,
            )
        case_results: list[tuple[ComplaintCase, QueryResult]] = []
        for case, plan in zip(self.cases, self._plans):
            case_results.append(
                (
                    case,
                    self.executor.execute(
                        plan, debug=True, provenance=self.provenance
                    ),
                )
            )
        return case_results, None

    def _make_context(
        self, X_active, y_active, active, case_results, watch, warm, execute_stats
    ) -> IterationContext:
        context = IterationContext(
            model=self.model,
            X_active=X_active,
            y_active=y_active,
            analyzer=InfluenceAnalyzer(
                self.model, X_active, y_active, damping=self.damping,
                cg_max_iter=self.cg_max_iter, cg_tol=self.cg_tol,
                grad_cache=self._grad_cache, row_ids=active,
            ),
            case_results=case_results,
            rng=self.rng,
            watch=watch,
            warm_start=warm,
            n_workers=self.n_workers,
        )
        if execute_stats is not None:
            context.diagnostics["execute_cache"] = execute_stats.as_dict()
        return context

    def _select_top(
        self,
        scores: np.ndarray,
        active: np.ndarray,
        warm: WarmStartState | None,
        removal_order: list[int],
        max_removals: int,
        k_per_iteration: int,
    ) -> tuple[list[int], np.ndarray]:
        """The fix step: delete the top-k by score, maintain warm state."""
        budget = min(k_per_iteration, max_removals - len(removal_order))
        top_positions = argsort_desc(scores)[:budget]
        removed = [int(active[position]) for position in top_positions]
        removal_order.extend(removed)
        if warm is not None and warm.block is not None:
            if warm.block.shape[1] == active.shape[0]:
                warm.drop_columns(top_positions)
            else:  # ranker produced a partial block — don't carry it
                warm.block = None
        return removed, np.delete(active, top_positions)

    # -- the serial loop (the golden reference order of effects) -------------------

    def _run_serial(
        self, method: str, ranker: Ranker, max_removals: int, k_per_iteration: int
    ) -> DebugReport:
        watch = Stopwatch()
        # CG solutions carried between iterations (θ* barely moves after a
        # top-k deletion, so the previous u / block are excellent starts).
        warm = WarmStartState() if self.warm_start_cg else None
        active = np.arange(self.X_train.shape[0])
        removal_order: list[int] = []
        iterations: list[IterationRecord] = []
        stopped_reason = "budget"
        iteration = 0

        while len(removal_order) < max_removals:
            iteration += 1
            before = watch.as_dict()

            X_active = self.X_train[active]
            y_active = self.y_train[active]
            with watch.time("train"):
                self._train_stage(X_active, y_active)

            with watch.time("execute"):
                case_results, execute_stats = self._execute_stage()

            satisfied = bool(case_results) and all_satisfied(case_results)
            if self.stop_when_satisfied and satisfied:
                stopped_reason = "complaints_satisfied"
                iterations.append(
                    IterationRecord(iteration, [], True, {}, {})
                )
                break

            context = self._make_context(
                X_active, y_active, active, case_results, watch, warm, execute_stats
            )
            scores = np.asarray(ranker.scores(context), dtype=np.float64)
            if scores.shape != (active.shape[0],):
                raise DebuggingError(
                    f"ranker returned {scores.shape}, expected ({active.shape[0]},)"
                )

            if np.allclose(scores, scores[0]):
                # Degenerate ranking (e.g. TwoStep found nothing to mark):
                # removing arbitrary records would only add noise.
                stopped_reason = "no_signal"
                iterations.append(
                    IterationRecord(
                        iteration, [], satisfied, dict(context.diagnostics), {}
                    )
                )
                break

            removed, active = self._select_top(
                scores, active, warm, removal_order, max_removals, k_per_iteration
            )

            after = watch.as_dict()
            step_timings = {
                label: after.get(label, 0.0) - before.get(label, 0.0)
                for label in after
            }
            iterations.append(
                IterationRecord(
                    iteration, removed, satisfied, dict(context.diagnostics), step_timings
                )
            )
            if active.size == 0:
                stopped_reason = "exhausted"
                break

        return DebugReport(
            method=method,
            removal_order=removal_order,
            iterations=iterations,
            timings=watch.as_dict(),
            stopped_reason=stopped_reason,
        )

    # -- the async pipelined loop ---------------------------------------------------

    def _run_async(
        self, method: str, ranker: Ranker, max_removals: int, k_per_iteration: int
    ) -> DebugReport:
        """The stage-graph loop: same effects as :meth:`_run_serial`, pipelined.

        A dedicated FIFO stage thread runs ``train(k) → execute(k) →
        train(k+1) → …`` while the driver ranks and selects.  Three
        overlaps, all invisible to the removal order:

        - iteration ``k``'s complaint-satisfaction check (pure provenance
          evaluation) is deferred until after the ``k+1`` prefetch is
          submitted, so it runs while the stage thread refits;
        - complaint-free rankers (``uses_case_results=False``) rank on the
          driver while ``execute(k)`` is still in flight — both only read
          the iteration-``k`` parameters;
        - ``train(k+1)``/``execute(k+1)`` start as soon as the top-k is
          known, before iteration ``k``'s record is even assembled.

        ``stop_when_satisfied=True`` degrades gracefully: the satisfied
        check must gate ranking, so it is evaluated synchronously and only
        the prefetch overlap remains.  Per-iteration ``timings`` diffs
        blur across overlapped stages here; the report-level totals stay
        exact per stage.
        """
        watch = Stopwatch()
        warm = WarmStartState() if self.warm_start_cg else None
        active = np.arange(self.X_train.shape[0])
        removal_order: list[int] = []
        iterations: list[IterationRecord] = []
        stopped_reason = "budget"
        iteration = 0

        def train_stage(X_active, y_active):
            with watch.time("train"):
                self._train_stage(X_active, y_active)

        def execute_stage():
            with watch.time("execute"):
                return self._execute_stage()

        with PipelineState(grad_cache=self._grad_cache, warm_start=warm) as pipe:
            train_future = pipe.submit_train(
                train_stage, self.X_train[active], self.y_train[active]
            )
            execute_future = pipe.submit_execute(execute_stage)

            while len(removal_order) < max_removals:
                iteration += 1
                before = watch.as_dict()
                X_active = self.X_train[active]
                y_active = self.y_train[active]
                train_future.result()  # θ_k ready; execute(k) may still run

                executed = None
                if ranker.uses_case_results or self.stop_when_satisfied:
                    executed = execute_future.result()

                if self.stop_when_satisfied:
                    case_results, _ = executed
                    if bool(case_results) and all_satisfied_columnar(case_results):
                        stopped_reason = "complaints_satisfied"
                        iterations.append(
                            IterationRecord(iteration, [], True, {}, {})
                        )
                        break

                case_results, execute_stats = (
                    executed if executed is not None else ([], None)
                )
                context = self._make_context(
                    X_active, y_active, active, case_results, watch, warm,
                    execute_stats,
                )
                scores = np.asarray(ranker.scores(context), dtype=np.float64)
                if scores.shape != (active.shape[0],):
                    raise DebuggingError(
                        f"ranker returned {scores.shape}, expected "
                        f"({active.shape[0]},)"
                    )

                if np.allclose(scores, scores[0]):
                    stopped_reason = "no_signal"
                    if executed is None:
                        executed = execute_future.result()
                        case_results, execute_stats = executed
                        if execute_stats is not None:
                            context.diagnostics["execute_cache"] = (
                                execute_stats.as_dict()
                            )
                    satisfied = bool(case_results) and all_satisfied_columnar(case_results)
                    iterations.append(
                        IterationRecord(
                            iteration, [], satisfied, dict(context.diagnostics), {}
                        )
                    )
                    break

                removed, active = self._select_top(
                    scores, active, warm, removal_order, max_removals,
                    k_per_iteration,
                )

                # Prefetch iteration k+1 only when the loop will continue, so
                # the final fitted parameters match the serial loop exactly.
                will_continue = (
                    len(removal_order) < max_removals and active.size > 0
                )
                next_train = next_execute = None
                if will_continue:
                    next_train = pipe.submit_train(
                        train_stage, self.X_train[active], self.y_train[active]
                    )
                    next_execute = pipe.submit_execute(execute_stage)

                # Drain iteration k's deferred diagnostics, overlapping the
                # prefetch: all_satisfied materializes provenance trees from
                # k's results and never calls the model, so it is safe while
                # train(k+1) mutates θ on the stage thread.
                if executed is None:
                    executed = execute_future.result()
                    case_results, execute_stats = executed
                    if execute_stats is not None:
                        context.diagnostics["execute_cache"] = (
                            execute_stats.as_dict()
                        )
                satisfied = bool(case_results) and all_satisfied_columnar(case_results)

                after = watch.as_dict()
                step_timings = {
                    label: after.get(label, 0.0) - before.get(label, 0.0)
                    for label in after
                }
                iterations.append(
                    IterationRecord(
                        iteration, removed, satisfied,
                        dict(context.diagnostics), step_timings,
                    )
                )
                if not will_continue and active.size == 0:
                    stopped_reason = "exhausted"
                    break
                train_future, execute_future = next_train, next_execute

        return DebugReport(
            method=method,
            removal_order=removal_order,
            iterations=iterations,
            timings=watch.as_dict(),
            stopped_reason=stopped_reason,
        )
