"""Rain's core: rankers, the train-rank-fix driver, and evaluation metrics."""

from .metrics import (
    auccr,
    auccr_normalized,
    precision_at_k,
    recall_at_k,
    recall_curve,
)
from .interventions import RelabelDebugger
from .rain import DebugReport, IterationRecord, RainDebugger
from .sharding import (
    ExecuteStats,
    PipelineState,
    execute_cases,
    fixed_shards,
    resolve_async,
    resolve_workers,
    run_sharded,
    spawn_generators,
)
from .rankers import (
    HolisticRanker,
    InfLossRanker,
    IterationContext,
    LossRanker,
    Ranker,
    TwoStepRanker,
    WarmStartState,
    make_ranker,
)

__all__ = [
    "auccr",
    "auccr_normalized",
    "precision_at_k",
    "recall_at_k",
    "recall_curve",
    "DebugReport",
    "IterationRecord",
    "RainDebugger",
    "RelabelDebugger",
    "ExecuteStats",
    "PipelineState",
    "execute_cases",
    "fixed_shards",
    "resolve_async",
    "resolve_workers",
    "run_sharded",
    "spawn_generators",
    "HolisticRanker",
    "InfLossRanker",
    "IterationContext",
    "LossRanker",
    "Ranker",
    "TwoStepRanker",
    "WarmStartState",
    "make_ranker",
]
