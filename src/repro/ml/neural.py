"""Neural classifiers (MLP / CNN) on the autodiff substrate.

The appendix of the paper (Section D) debugs a 3-layer CNN — convolution,
max-pooling, dense+ReLU — on MNIST.  :func:`make_cnn` builds exactly that
architecture; :func:`make_mlp` builds small fully-connected nets.

Influence analysis on non-convex models follows [Koh & Liang 2017]: the
Hessian is damped (handled by the CG solver) and HVPs are computed by
central finite differences of the exact autodiff gradient, which avoids
implementing double-backward while keeping O(gradient) cost per product.
Per-sample directional derivatives ``∇ℓ_iᵀ v`` — the expensive inner loop
of Eq. (4) — are computed with *two* forward passes via the identity
``∇ℓ_iᵀ v = d/dα ℓ_i(θ + α v)``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..autodiff import nn
from ..autodiff import tensor as T
from ..errors import ModelError
from ..utils import as_rng
from .base import ClassificationModel


class NeuralClassifier(ClassificationModel):
    """Wraps an autodiff :class:`~repro.autodiff.nn.Module` producing logits."""

    def __init__(
        self,
        classes: Sequence,
        network: nn.Module,
        input_adapter: Callable[[np.ndarray], np.ndarray] | None = None,
        l2: float = 1e-3,
        fd_eps: float = 1e-5,
    ) -> None:
        super().__init__(classes, l2=l2)
        self.network = network
        self.input_adapter = input_adapter or (lambda X: X)
        self.fd_eps = float(fd_eps)
        self._initial_flat = network.get_flat()

    @property
    def n_params(self) -> int:
        return self.network.n_params()

    def _init_params(self, n_features_shape: tuple[int, ...]) -> np.ndarray:
        return self._initial_flat.copy()

    # -- forward helpers -----------------------------------------------------------

    def _logits(self, params: np.ndarray, X: np.ndarray) -> T.Tensor:
        self.network.set_flat(params)
        inputs = T.Tensor(self.input_adapter(np.asarray(X, dtype=np.float64)))
        logits = self.network(inputs)
        if logits.ndim != 2 or logits.shape[1] != self.n_classes:
            raise ModelError(
                f"network produced logits of shape {logits.shape}, expected "
                f"(n, {self.n_classes})"
            )
        return logits

    def _loss_tensor(
        self, params: np.ndarray, X: np.ndarray, y_idx: np.ndarray
    ) -> tuple[T.Tensor, T.Tensor]:
        logits = self._logits(params, X)
        log_p = T.log_softmax(logits)
        picked = T.pick(log_p, y_idx)
        mean_loss = T.mul(T.sum_(picked), T.Tensor(-1.0 / X.shape[0]))
        return mean_loss, picked

    # -- protocol implementation -----------------------------------------------------

    def _data_loss_and_grad(self, params, X, y_idx):
        self.network.zero_grad()
        mean_loss, _ = self._loss_tensor(params, X, y_idx)
        mean_loss.backward()
        return mean_loss.item(), self.network.grad_flat()

    def _per_sample_losses(self, params, X, y_idx):
        _, picked = self._loss_tensor(params, X, y_idx)
        return -picked.data

    def _per_sample_grads(self, params, X, y_idx):
        vectorized = self._per_sample_grads_vectorized(params, X, y_idx)
        if vectorized is not None:
            return vectorized
        return self._per_sample_grads_reference(params, X, y_idx)

    def _per_sample_grads_reference(self, params, X, y_idx):
        """One backward pass per record — the pre-vectorization golden path.

        Kept as the fallback for networks whose layers don't support
        per-sample capture, and as the reference the test suite checks the
        batched path against.
        """
        grads = np.zeros((X.shape[0], self.n_params))
        for index in range(X.shape[0]):
            self.network.zero_grad()
            mean_loss, _ = self._loss_tensor(
                params, X[index:index + 1], y_idx[index:index + 1]
            )
            mean_loss.backward()
            grads[index] = self.network.grad_flat()
        return grads

    def _per_sample_grads_vectorized(self, params, X, y_idx):
        """All per-sample gradients from ONE batched forward/backward pass.

        Every network op is batch-parallel, so backpropagating the stacked
        matrix of per-sample loss gradients w.r.t. the logits
        (``softmax - onehot``, one row per record) makes the gradient at each
        tapped layer output exactly the per-sample deltas; Dense/Conv2D then
        reconstruct per-sample parameter gradients by contracting deltas with
        their captured inputs.  Returns ``None`` when some parameterized
        layer doesn't support capture (caller falls back to the loop).
        """
        self.network.set_flat(params)
        inputs = T.Tensor(self.input_adapter(np.asarray(X, dtype=np.float64)))
        captures: list[nn.PerSampleCapture] = []
        logits = self.network.forward_captured(inputs, captures)
        if logits.ndim != 2 or logits.shape[1] != self.n_classes:
            raise ModelError(
                f"network produced logits of shape {logits.shape}, expected "
                f"(n, {self.n_classes})"
            )
        all_params = self.network.parameters()
        covered = {
            id(param)
            for capture in captures
            for param in capture.layer.parameters()
        }
        if covered != {id(param) for param in all_params}:
            return None

        n = X.shape[0]
        shifted = logits.data - logits.data.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        upstream = probs
        upstream[np.arange(n), y_idx] -= 1.0  # ∂ℓ_i/∂logits_i

        self.network.zero_grad()
        logits.backward(upstream)

        per_param: dict[int, np.ndarray] = {}
        for capture in captures:
            grads = capture.layer.per_sample_param_grads(
                capture.x_data, capture.sink["grad"]
            )
            for param, grad in zip(capture.layer.parameters(), grads):
                flat = grad.reshape(n, -1)
                if id(param) in per_param:  # shared parameter: sum usages
                    per_param[id(param)] = per_param[id(param)] + flat
                else:
                    per_param[id(param)] = flat
        return np.concatenate(
            [per_param[id(param)] for param in all_params], axis=1
        )

    def grad_dot(self, X, y, v):
        """``∇ℓ_iᵀ v`` for every sample with two forward passes (central FD)."""
        params = self.get_params()
        v = np.asarray(v, dtype=np.float64)
        norm = np.linalg.norm(v)
        if norm == 0:
            return np.zeros(np.asarray(X).shape[0])
        eps = self.fd_eps / norm * max(1.0, np.linalg.norm(params))
        y_idx = self.labels_to_indices(y)
        X = np.asarray(X, dtype=np.float64)
        plus = self._per_sample_losses(params + eps * v, X, y_idx)
        minus = self._per_sample_losses(params - eps * v, X, y_idx)
        return (plus - minus) / (2.0 * eps)

    def _data_hvp(self, params, X, y_idx, v):
        """Central finite difference of the exact gradient: ``H v``."""
        norm = np.linalg.norm(v)
        if norm == 0:
            return np.zeros_like(v)
        eps = self.fd_eps / norm * max(1.0, np.linalg.norm(params))
        _, grad_plus = self._data_loss_and_grad(params + eps * v, X, y_idx)
        _, grad_minus = self._data_loss_and_grad(params - eps * v, X, y_idx)
        return (grad_plus - grad_minus) / (2.0 * eps)

    def _proba(self, params, X):
        logits = self._logits(params, X)
        return np.exp(T.log_softmax(logits).data)

    def _prob_vjp(self, params, X, weights):
        self.network.zero_grad()
        logits = self._logits(params, X)
        probs = T.softmax(logits)
        weighted = T.mul(probs, T.Tensor(weights))
        total = T.sum_(weighted)
        total.backward()
        return self.network.grad_flat()


def make_mlp(
    input_dim: int,
    hidden: Sequence[int],
    n_classes: int,
    rng=None,
) -> nn.Sequential:
    """A fully-connected ReLU network producing ``n_classes`` logits."""
    rng = as_rng(rng)
    layers: list[nn.Module] = []
    previous = input_dim
    for width in hidden:
        layers.append(nn.Dense(previous, width, rng=rng))
        layers.append(nn.ReLU())
        previous = width
    layers.append(nn.Dense(previous, n_classes, rng=rng))
    return nn.Sequential(layers)


def make_cnn(
    image_size: int,
    n_classes: int,
    channels: int = 4,
    kernel: int = 5,
    pool: int = 2,
    rng=None,
) -> nn.Sequential:
    """The appendix's 3-layer CNN: conv → maxpool → dense (ReLU inside).

    Input shape: ``(n, 1, image_size, image_size)``.
    """
    rng = as_rng(rng)
    conv_out = image_size - kernel + 1
    if conv_out % pool:
        raise ModelError(
            f"conv output {conv_out} is not divisible by pool size {pool}; "
            "adjust kernel/pool"
        )
    pooled = conv_out // pool
    flat = channels * pooled * pooled
    return nn.Sequential(
        [
            nn.Conv2D(1, channels, kernel, rng=rng),
            nn.ReLU(),
            nn.MaxPool2D(pool),
            nn.Flatten(),
            nn.Dense(flat, n_classes, rng=rng),
        ]
    )


def image_input_adapter(X: np.ndarray) -> np.ndarray:
    """(n, H, W) images → (n, 1, H, W) network input."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 3:
        return X[:, None, :, :]
    if X.ndim == 4:
        return X
    raise ModelError(f"expected image batch of ndim 3 or 4, got shape {X.shape}")


def flatten_input_adapter(X: np.ndarray) -> np.ndarray:
    """Arbitrary feature tensors → (n, d) matrix for MLPs."""
    X = np.asarray(X, dtype=np.float64)
    return X.reshape(X.shape[0], -1)
