"""Linear classifiers with closed-form gradients and Hessian-vector products.

These are the workhorse models of the paper's experiments (Sections 6.2-6.6
all use logistic regression).  Binary logistic regression and multiclass
softmax regression both support:

- analytic per-sample gradients (vectorized, no loops),
- analytic HVPs — ``H v = (1/n) Xᵀ diag(σ'(Xθ)) X v`` for the binary case
  and the Fisher-form product for softmax — which make conjugate-gradient
  influence estimation fast and exact,
- analytic probability VJPs for TwoStep/Holistic ``q`` gradients.

Both models optionally append an intercept feature internally
(``fit_intercept=True``); the intercept is regularized along with the rest
of θ, which keeps the training Hessian strictly positive definite (the
convexity condition influence functions rely on).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ModelError
from .base import ClassificationModel


def _stable_sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def _log_sigmoid(z: np.ndarray) -> np.ndarray:
    """log σ(z), numerically stable."""
    return -np.logaddexp(0.0, -z)


class LogisticRegression(ClassificationModel):
    """Binary logistic regression: ``p(class_1 | x) = σ(xᵀθ)``."""

    def __init__(
        self,
        classes: Sequence,
        n_features: int,
        l2: float = 1e-3,
        fit_intercept: bool = True,
    ) -> None:
        super().__init__(classes, l2=l2)
        if self.n_classes != 2:
            raise ModelError(
                f"LogisticRegression is binary; got {self.n_classes} classes"
            )
        if n_features <= 0:
            raise ModelError(f"n_features must be positive, got {n_features}")
        self.n_features = int(n_features)
        self.fit_intercept = bool(fit_intercept)

    @property
    def n_params(self) -> int:
        return self.n_features + (1 if self.fit_intercept else 0)

    def _init_params(self, n_features_shape: tuple[int, ...]) -> np.ndarray:
        if n_features_shape != (self.n_features,):
            raise ModelError(
                f"expected features of shape ({self.n_features},), "
                f"got {n_features_shape}"
            )
        return np.zeros(self.n_params)

    def _augment(self, X: np.ndarray) -> np.ndarray:
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ModelError(
                f"X must have shape (n, {self.n_features}), got {X.shape}"
            )
        if not self.fit_intercept:
            return X
        return np.hstack([X, np.ones((X.shape[0], 1))])

    # -- losses / gradients ------------------------------------------------------

    def _margins(self, params: np.ndarray, X: np.ndarray) -> np.ndarray:
        return self._augment(X) @ params

    def _data_loss_and_grad(self, params, X, y_idx):
        Xa = self._augment(X)
        z = Xa @ params
        y = y_idx.astype(np.float64)  # 1 for classes[1]
        # ℓ = -y log σ(z) - (1-y) log(1-σ(z))
        losses = -(y * _log_sigmoid(z) + (1.0 - y) * _log_sigmoid(-z))
        p = _stable_sigmoid(z)
        grad = Xa.T @ (p - y) / X.shape[0]
        return float(losses.mean()), grad

    def _per_sample_losses(self, params, X, y_idx):
        z = self._margins(params, X)
        y = y_idx.astype(np.float64)
        return -(y * _log_sigmoid(z) + (1.0 - y) * _log_sigmoid(-z))

    def _per_sample_grads(self, params, X, y_idx):
        Xa = self._augment(X)
        p = _stable_sigmoid(Xa @ params)
        residual = p - y_idx.astype(np.float64)
        return Xa * residual[:, None]

    def _data_hvp(self, params, X, y_idx, v):
        Xa = self._augment(X)
        p = _stable_sigmoid(Xa @ params)
        weights = p * (1.0 - p)
        return Xa.T @ (weights * (Xa @ v)) / X.shape[0]

    def _data_hvp_block(self, params, X, y_idx, V):
        # H V = (1/n) Xᵀ diag(σ') X V for all columns at once.
        Xa = self._augment(X)
        p = _stable_sigmoid(Xa @ params)
        weights = (p * (1.0 - p))[:, None]
        return Xa.T @ (weights * (Xa @ V)) / X.shape[0]

    def _proba(self, params, X):
        p1 = _stable_sigmoid(self._margins(params, X))
        return np.stack([1.0 - p1, p1], axis=1)

    def _prob_vjp(self, params, X, weights):
        Xa = self._augment(X)
        p1 = _stable_sigmoid(Xa @ params)
        # ∂p1/∂θ = p1(1-p1)x ; ∂p0/∂θ = -p1(1-p1)x
        coeff = (weights[:, 1] - weights[:, 0]) * p1 * (1.0 - p1)
        return Xa.T @ coeff

    def decision_values(self, X: np.ndarray) -> np.ndarray:
        """Raw margins ``xᵀθ`` (used by tests and diagnostics)."""
        return self._margins(self.get_params(), np.asarray(X, dtype=np.float64))


class SoftmaxRegression(ClassificationModel):
    """Multinomial logistic regression over K classes.

    Parameters are a dense ``(n_features(+1), K)`` matrix stored flat.
    """

    def __init__(
        self,
        classes: Sequence,
        n_features: int,
        l2: float = 1e-3,
        fit_intercept: bool = True,
    ) -> None:
        super().__init__(classes, l2=l2)
        if n_features <= 0:
            raise ModelError(f"n_features must be positive, got {n_features}")
        self.n_features = int(n_features)
        self.fit_intercept = bool(fit_intercept)

    @property
    def _n_rows(self) -> int:
        return self.n_features + (1 if self.fit_intercept else 0)

    @property
    def n_params(self) -> int:
        return self._n_rows * self.n_classes

    def _init_params(self, n_features_shape: tuple[int, ...]) -> np.ndarray:
        if n_features_shape != (self.n_features,):
            raise ModelError(
                f"expected features of shape ({self.n_features},), "
                f"got {n_features_shape}"
            )
        return np.zeros(self.n_params)

    def _augment(self, X: np.ndarray) -> np.ndarray:
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ModelError(
                f"X must have shape (n, {self.n_features}), got {X.shape}"
            )
        if not self.fit_intercept:
            return X
        return np.hstack([X, np.ones((X.shape[0], 1))])

    def _weight_matrix(self, params: np.ndarray) -> np.ndarray:
        return params.reshape(self._n_rows, self.n_classes)

    def _log_proba(self, params: np.ndarray, X: np.ndarray) -> np.ndarray:
        logits = self._augment(X) @ self._weight_matrix(params)
        logits -= logits.max(axis=1, keepdims=True)
        log_z = np.log(np.exp(logits).sum(axis=1, keepdims=True))
        return logits - log_z

    def _data_loss_and_grad(self, params, X, y_idx):
        Xa = self._augment(X)
        log_p = self._log_proba(params, X)
        n = X.shape[0]
        losses = -log_p[np.arange(n), y_idx]
        p = np.exp(log_p)
        delta = p.copy()
        delta[np.arange(n), y_idx] -= 1.0
        grad = (Xa.T @ delta) / n
        return float(losses.mean()), grad.ravel()

    def _per_sample_losses(self, params, X, y_idx):
        log_p = self._log_proba(params, X)
        return -log_p[np.arange(X.shape[0]), y_idx]

    def _per_sample_grads(self, params, X, y_idx):
        Xa = self._augment(X)
        p = np.exp(self._log_proba(params, X))
        delta = p.copy()
        delta[np.arange(X.shape[0]), y_idx] -= 1.0
        # grad_i = x_i ⊗ delta_i, flattened to (n_rows * K)
        return np.einsum("nd,nk->ndk", Xa, delta).reshape(X.shape[0], -1)

    def _data_hvp(self, params, X, y_idx, v):
        Xa = self._augment(X)
        p = np.exp(self._log_proba(params, X))
        V = v.reshape(self._n_rows, self.n_classes)
        A = Xa @ V  # (n, K)
        # Row-wise (diag(p) - p pᵀ) A
        B = p * (A - (p * A).sum(axis=1, keepdims=True))
        return (Xa.T @ B / X.shape[0]).ravel()

    def _data_hvp_block(self, params, X, y_idx, V):
        # Same Fisher-form product as _data_hvp, batched over the b columns
        # of V (each a flattened (n_rows, K) direction).
        Xa = self._augment(X)
        p = np.exp(self._log_proba(params, X))
        n_rhs = V.shape[1]
        W = V.T.reshape(n_rhs, self._n_rows, self.n_classes)
        A = np.einsum("nd,bdk->bnk", Xa, W)
        B = p[None, :, :] * (A - np.einsum("nk,bnk->bn", p, A)[:, :, None])
        out = np.einsum("nd,bnk->bdk", Xa, B) / X.shape[0]
        return out.reshape(n_rhs, -1).T

    def _proba(self, params, X):
        return np.exp(self._log_proba(params, X))

    def _prob_vjp(self, params, X, weights):
        Xa = self._augment(X)
        p = np.exp(self._log_proba(params, X))
        # ∂/∂W Σ w_ic p_ic ; per-row inner Jacobian is diag(p) - p pᵀ.
        inner = p * (weights - (weights * p).sum(axis=1, keepdims=True))
        return (Xa.T @ inner).ravel()
