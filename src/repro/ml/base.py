"""The classification-model protocol consumed by the query engine and Rain.

Rain needs more from a model than ``fit``/``predict``:

- per-sample training losses and gradients (the Loss/InfLoss baselines and
  the right-hand sides of Eq. 4),
- Hessian-vector products of the regularized training loss (the ``H θ*``
  of the influence function, solved by conjugate gradient),
- a *probability vector-Jacobian product* ``prob_vjp``: the gradient of
  ``Σ_i Σ_c w[i, c] · p_c(x_i; θ)`` with respect to θ.  Both TwoStep's
  ``q(θ) = -Σ p_{t_i}(x_i; θ)`` and Holistic's relaxed provenance gradients
  reduce to this single contraction.

Models are trained by L-BFGS on the L2-regularized mean loss
``L(θ) = (1/n) Σ ℓ(z_i, θ) + λ‖θ‖²``, matching Section 6.1.6 of the paper.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import optimize

from ..errors import ModelError, NotFittedError


class ClassificationModel:
    """Abstract base class; see module docstring for the contract."""

    def __init__(self, classes: Sequence, l2: float = 1e-3) -> None:
        if len(classes) < 2:
            raise ModelError(f"need at least 2 classes, got {list(classes)}")
        if len(set(classes)) != len(classes):
            raise ModelError(f"duplicate class labels in {list(classes)}")
        if l2 < 0:
            raise ModelError(f"l2 must be non-negative, got {l2}")
        self.classes = list(classes)
        self.l2 = float(l2)
        self._class_index = {label: index for index, label in enumerate(self.classes)}
        self._params: np.ndarray | None = None

    # -- parameters -------------------------------------------------------------

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    @property
    def n_params(self) -> int:
        raise NotImplementedError

    def get_params(self) -> np.ndarray:
        if self._params is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self._params.copy()

    def set_params(self, params: np.ndarray) -> None:
        params = np.asarray(params, dtype=np.float64)
        if params.shape != (self.n_params,):
            raise ModelError(
                f"params shape {params.shape} != ({self.n_params},)"
            )
        self._params = params.copy()

    @property
    def is_fitted(self) -> bool:
        return self._params is not None

    def labels_to_indices(self, y: np.ndarray) -> np.ndarray:
        try:
            return np.asarray([self._class_index[label] for label in np.asarray(y).tolist()])
        except KeyError as exc:
            raise ModelError(
                f"unknown class label {exc.args[0]!r}; classes: {self.classes}"
            ) from None

    def indices_to_labels(self, indices: np.ndarray) -> np.ndarray:
        return np.asarray(self.classes)[np.asarray(indices, dtype=np.int64)]

    # -- core numerical interface (implemented by subclasses) --------------------

    def _data_loss_and_grad(
        self, params: np.ndarray, X: np.ndarray, y_idx: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Mean data loss and its gradient (no regularization)."""
        raise NotImplementedError

    def _per_sample_losses(
        self, params: np.ndarray, X: np.ndarray, y_idx: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    def _per_sample_grads(
        self, params: np.ndarray, X: np.ndarray, y_idx: np.ndarray
    ) -> np.ndarray:
        """(n, n_params) matrix of per-sample loss gradients."""
        raise NotImplementedError

    def _data_hvp(
        self, params: np.ndarray, X: np.ndarray, y_idx: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """Hessian-vector product of the mean data loss."""
        raise NotImplementedError

    def _data_hvp_block(
        self, params: np.ndarray, X: np.ndarray, y_idx: np.ndarray, V: np.ndarray
    ) -> np.ndarray:
        """Batched Hessian-matrix product ``H V`` for ``V`` of shape
        ``(n_params, k)``.

        The default falls back to one :meth:`_data_hvp` per column; linear
        models override it with a single matrix-level contraction so a block
        CG iteration costs a few BLAS-3 calls instead of ``k`` matvecs.
        """
        if V.shape[1] == 0:
            return np.zeros_like(V)
        return np.column_stack(
            [self._data_hvp(params, X, y_idx, V[:, j]) for j in range(V.shape[1])]
        )

    def _proba(self, params: np.ndarray, X: np.ndarray) -> np.ndarray:
        """(n, n_classes) class probabilities."""
        raise NotImplementedError

    def _prob_vjp(
        self, params: np.ndarray, X: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Gradient of ``Σ_i Σ_c weights[i,c] p_c(x_i; θ)`` w.r.t. θ."""
        raise NotImplementedError

    def _init_params(self, n_features_shape: tuple[int, ...]) -> np.ndarray:
        raise NotImplementedError

    # -- public API ---------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        warm_start: bool = True,
        max_iter: int = 300,
        tol: float = 1e-8,
    ) -> "ClassificationModel":
        """Minimize the regularized mean loss with L-BFGS.

        ``warm_start=True`` (the default, and what the train-rank-fix loop
        uses) starts from the current parameters when available.
        """
        X = np.asarray(X, dtype=np.float64)
        y_idx = self.labels_to_indices(y)
        if X.shape[0] != y_idx.shape[0]:
            raise ModelError(
                f"X has {X.shape[0]} rows but y has {y_idx.shape[0]} labels"
            )
        if X.shape[0] == 0:
            raise ModelError("cannot fit on an empty training set")

        if warm_start and self._params is not None:
            theta0 = self._params
        else:
            theta0 = self._init_params(X.shape[1:])

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            loss, grad = self._data_loss_and_grad(theta, X, y_idx)
            loss += self.l2 * float(theta @ theta)
            grad = grad + 2.0 * self.l2 * theta
            return loss, grad

        result = optimize.minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": max_iter, "ftol": tol, "gtol": 1e-9},
        )
        self._params = np.asarray(result.x, dtype=np.float64)
        self.last_fit_result_ = result
        return self

    def loss(self, X: np.ndarray, y: np.ndarray) -> float:
        """Regularized mean loss at the current parameters."""
        params = self.get_params()
        X = np.asarray(X, dtype=np.float64)
        value, _ = self._data_loss_and_grad(params, X, self.labels_to_indices(y))
        return float(value + self.l2 * params @ params)

    def per_sample_losses(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self._per_sample_losses(
            self.get_params(), np.asarray(X, dtype=np.float64), self.labels_to_indices(y)
        )

    def per_sample_grads(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self._per_sample_grads(
            self.get_params(), np.asarray(X, dtype=np.float64), self.labels_to_indices(y)
        )

    def grad_dot(self, X: np.ndarray, y: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Per-sample directional derivatives ``∇ℓ(z_i, θ)ᵀ v``.

        Default implementation materializes per-sample gradients; subclasses
        override with cheaper schemes (the neural model uses two forward
        passes of central finite differences).
        """
        return self.per_sample_grads(X, y) @ np.asarray(v, dtype=np.float64)

    def grad_dot_block(self, X: np.ndarray, y: np.ndarray, U: np.ndarray) -> np.ndarray:
        """Per-sample directional derivatives against ``k`` directions.

        ``U`` is ``(n_params, k)``; returns the ``(n, k)`` matrix with entry
        ``[i, j] = ∇ℓ(z_i, θ)ᵀ U[:, j]``.  All models use this default: it
        materializes per-sample gradients once and contracts them against
        every direction in one GEMM.  Note the neural model's *scalar*
        :meth:`grad_dot` uses central finite differences instead, so for
        neural models the block and scalar paths agree only to FD error.
        """
        U = np.asarray(U, dtype=np.float64)
        if U.ndim != 2 or U.shape[0] != self.n_params:
            raise ModelError(
                f"U has shape {U.shape}, expected ({self.n_params}, k)"
            )
        return self.per_sample_grads(X, y) @ U

    def hvp(self, X: np.ndarray, y: np.ndarray, v: np.ndarray) -> np.ndarray:
        """HVP of the *regularized* mean training loss: ``(∇²L)v``."""
        params = self.get_params()
        v = np.asarray(v, dtype=np.float64)
        data = self._data_hvp(
            params, np.asarray(X, dtype=np.float64), self.labels_to_indices(y), v
        )
        return data + 2.0 * self.l2 * v

    def hvp_block(self, X: np.ndarray, y: np.ndarray, V: np.ndarray) -> np.ndarray:
        """Batched HVPs of the regularized loss: ``(∇²L) V`` column by column.

        ``V`` is a ``(n_params, k)`` matrix of directions; the result has the
        same shape.  This is the oracle
        :func:`~repro.influence.cg.block_conjugate_gradient` consumes.
        """
        params = self.get_params()
        V = np.asarray(V, dtype=np.float64)
        if V.ndim != 2 or V.shape[0] != self.n_params:
            raise ModelError(
                f"V has shape {V.shape}, expected ({self.n_params}, k)"
            )
        data = self._data_hvp_block(
            params, np.asarray(X, dtype=np.float64), self.labels_to_indices(y), V
        )
        return data + 2.0 * self.l2 * V

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._proba(self.get_params(), np.asarray(X, dtype=np.float64))

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.indices_to_labels(np.argmax(proba, axis=1))

    def prob_vjp(self, X: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """∇_θ ``Σ_i Σ_c weights[i, c] · p_c(x_i; θ)``."""
        X = np.asarray(X, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (X.shape[0], self.n_classes):
            raise ModelError(
                f"weights shape {weights.shape} != ({X.shape[0]}, {self.n_classes})"
            )
        return self._prob_vjp(self.get_params(), X, weights)

    # -- evaluation helpers ---------------------------------------------------------

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        predictions = self.predict(X)
        return float(np.mean(np.asarray(predictions) == np.asarray(y)))

    def f1_binary(self, X: np.ndarray, y: np.ndarray, positive) -> float:
        """F1 of the ``positive`` class (used for the paper's Figure 4)."""
        predictions = np.asarray(self.predict(X))
        y = np.asarray(y)
        true_pos = float(np.sum((predictions == positive) & (y == positive)))
        pred_pos = float(np.sum(predictions == positive))
        actual_pos = float(np.sum(y == positive))
        if pred_pos == 0 or actual_pos == 0 or true_pos == 0:
            return 0.0
        precision = true_pos / pred_pos
        recall = true_pos / actual_pos
        return 2 * precision * recall / (precision + recall)
