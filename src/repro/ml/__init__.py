"""ML models implementing the protocol Rain's influence machinery needs."""

from .base import ClassificationModel
from .linear import LogisticRegression, SoftmaxRegression
from .neural import (
    NeuralClassifier,
    flatten_input_adapter,
    image_input_adapter,
    make_cnn,
    make_mlp,
)

__all__ = [
    "ClassificationModel",
    "LogisticRegression",
    "SoftmaxRegression",
    "NeuralClassifier",
    "flatten_input_adapter",
    "image_input_adapter",
    "make_cnn",
    "make_mlp",
]
