"""Complaints: the user's declarative error specifications (Definition 3.1).

Three complaint forms are supported:

- :class:`ValueComplaint` — "this aggregate output value should be
  ``op value``" (``=``, ``<=``, ``>=``).  Targets a cell of an aggregate
  query output, addressed either by output row index or by group key (the
  latter also reaches *currently empty* groups).
- :class:`TupleComplaint` — "this output tuple should not exist" (join /
  selection outputs, or an aggregated group that should be empty).
- :class:`PredictionComplaint` — a complaint on an *intermediate* result:
  one model prediction is wrong and should be ``label``.  These are the
  paper's unambiguous "point complaints" (Sections 6.4, 6.6), equivalent
  to the labeled mispredictions consumed by classic influence analysis.

Complaints are attached to a query via :class:`ComplaintCase`; Rain accepts
multiple cases, possibly over different queries sharing the model
(Section 6.5's multi-query experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import ComplaintError
from ..relational import provenance as prov
from ..relational.executor import QueryResult

VALUE_OPS = ("=", "<=", ">=")


@dataclass(frozen=True)
class ValueComplaint:
    """An aggregate output cell should be ``op value``."""

    column: str
    op: str
    value: float
    row_index: int | None = None
    group_key: tuple | None = None

    def __post_init__(self) -> None:
        if self.op not in VALUE_OPS:
            raise ComplaintError(f"value complaint op must be in {VALUE_OPS}")
        if (self.row_index is None) == (self.group_key is None):
            raise ComplaintError(
                "specify exactly one of row_index / group_key for a value complaint"
            )

    def polynomial(self, result: QueryResult) -> prov.NumExpr:
        """The provenance polynomial of the complained-about cell."""
        if self.group_key is not None:
            return result.group_polynomial_by_key(self.group_key, self.column)
        return result.cell_polynomial(self.row_index, self.column)

    def current_value(self, result: QueryResult) -> float:
        return float(
            self.polynomial(result).evaluate(result.assignment())
        )

    def is_satisfied(self, result: QueryResult) -> bool:
        current = self.current_value(result)
        if self.op == "=":
            return bool(np.isclose(current, self.value))
        if self.op == "<=":
            return bool(current <= self.value + 1e-9)
        return bool(current >= self.value - 1e-9)


@dataclass(frozen=True)
class TupleComplaint:
    """An output tuple should not be in the result.

    The tuple may be addressed three ways:

    - ``row_index``: position in the *current* concrete output.  Fragile
      across retraining (the output changes), so mainly for one-shot use.
    - ``group_key``: an aggregated group that should not exist.
    - ``lineage``: a mapping ``alias -> base row id`` pinning the tuple by
      the queried records it derives from.  This is stable across the
      train-rank-fix loop — if the tuple later disappears from the output,
      the complaint is simply satisfied — and is how the MNIST join
      experiments of Section 6.3 address join rows.
    """

    row_index: int | None = None
    group_key: tuple | None = None
    lineage: tuple | None = None  # tuple of (alias, row_id) pairs

    def __post_init__(self) -> None:
        provided = sum(
            target is not None
            for target in (self.row_index, self.group_key, self.lineage)
        )
        if provided != 1:
            raise ComplaintError(
                "specify exactly one of row_index / group_key / lineage "
                "for a tuple complaint"
            )
        if self.lineage is not None:
            object.__setattr__(
                self,
                "lineage",
                tuple(sorted((str(a), int(r)) for a, r in dict(self.lineage).items())),
            )

    @classmethod
    def for_lineage(cls, **alias_row_ids: int) -> "TupleComplaint":
        """``TupleComplaint.for_lineage(L=3, R=7)`` — tuple from L row 3 ⋈ R row 7."""
        return cls(lineage=tuple(alias_row_ids.items()))

    def condition(self, result: QueryResult) -> prov.BoolExpr:
        """The existence condition of the offending tuple."""
        if self.group_key is not None:
            if result.groups is None:
                raise ComplaintError("group_key complaint on a non-aggregate result")
            for group in result.groups:
                if group.key == self.group_key:
                    return group.condition
            raise ComplaintError(f"no group with key {self.group_key!r}")
        if self.lineage is not None:
            return self._lineage_condition(result)
        return result.tuple_condition(self.row_index)

    def _lineage_condition(self, result: QueryResult) -> prov.BoolExpr:
        batch = result.candidate_batch
        if batch is None:
            raise ComplaintError("lineage complaints need a debug-mode result")
        wanted = dict(self.lineage)
        unknown = set(wanted) - set(batch.alias_row_ids)
        if unknown:
            raise ComplaintError(
                f"lineage aliases {sorted(unknown)} not in the query "
                f"(available: {sorted(batch.alias_row_ids)})"
            )
        for index in range(len(batch)):
            if all(
                int(batch.alias_row_ids[alias][index]) == row_id
                for alias, row_id in wanted.items()
            ):
                return batch.condition(index)
        # The tuple is not even a candidate (deterministically filtered):
        # it can never exist, so the complaint is vacuously satisfied.
        return prov.FALSE

    def is_satisfied(self, result: QueryResult) -> bool:
        return not self.condition(result).evaluate(result.assignment())


@dataclass(frozen=True)
class PredictionComplaint:
    """An intermediate prediction is wrong: site should be ``label``.

    The site is addressed by the base relation + row id of the queried
    record (how a user would point at it), and resolved against the
    execution's site registry.
    """

    relation_name: str
    row_id: int
    label: Union[int, str]
    model_name: str | None = None

    def site_id(self, result: QueryResult) -> int:
        for site in result.runtime.sites:
            if (
                site.relation_name == self.relation_name
                and site.row_id == self.row_id
                and (self.model_name is None or site.model_name == self.model_name)
            ):
                return site.site_id
        raise ComplaintError(
            f"no inference site for ({self.relation_name!r}, row {self.row_id})"
        )

    def is_satisfied(self, result: QueryResult) -> bool:
        site = result.runtime.sites[self.site_id(result)]
        return result.runtime.prediction_for_site(site.key) == self.label


Complaint = Union[ValueComplaint, TupleComplaint, PredictionComplaint]


@dataclass
class ComplaintCase:
    """One query (SQL text or plan) with the complaints raised against it."""

    query: object  # SQL string or a Plan
    complaints: list

    def __post_init__(self) -> None:
        if not self.complaints:
            raise ComplaintError("a complaint case needs at least one complaint")


def all_satisfied(case_results: list[tuple[ComplaintCase, QueryResult]]) -> bool:
    """True when every complaint in every case is resolved."""
    return all(
        complaint.is_satisfied(result)
        for case, result in case_results
        for complaint in case.complaints
    )


def _complaint_node(complaint: Complaint, result: QueryResult) -> int | None:
    """The compiled node id a complaint's satisfaction depends on.

    ``None`` means vacuously satisfied (a lineage tuple that is not even a
    candidate), mirroring the ``prov.FALSE`` arm of the tree path.
    """
    if isinstance(complaint, ValueComplaint):
        return result.cell_node_for(
            complaint.column,
            row_index=complaint.row_index,
            group_key=complaint.group_key,
        )
    if complaint.group_key is not None:
        node = result.group_by_key(complaint.group_key).condition_node
        if node is None:
            raise ComplaintError("condition nodes need compiled mode")
        return node
    if complaint.lineage is not None:
        batch = result.candidate_batch
        if batch is None or result.candidate_cond_nodes is None:
            raise ComplaintError("lineage complaints need a compiled debug result")
        wanted = dict(complaint.lineage)
        unknown = set(wanted) - set(batch.alias_row_ids)
        if unknown:
            raise ComplaintError(
                f"lineage aliases {sorted(unknown)} not in the query "
                f"(available: {sorted(batch.alias_row_ids)})"
            )
        mask = np.ones(len(batch), dtype=bool)
        for alias, row_id in wanted.items():
            mask &= np.asarray(batch.alias_row_ids[alias]) == row_id
        matches = np.flatnonzero(mask)
        if matches.size == 0:
            return None
        return int(result.candidate_cond_nodes[int(matches[0])])
    return result.tuple_condition_node(complaint.row_index)


def _value_satisfied(complaint: Complaint, value: float) -> bool:
    """The satisfaction predicate applied to an evaluated node value."""
    if isinstance(complaint, TupleComplaint):
        return value == 0.0  # existence condition is false
    if complaint.op == "=":
        return bool(np.isclose(value, complaint.value))
    if complaint.op == "<=":
        return bool(value <= complaint.value + 1e-9)
    return bool(value >= complaint.value - 1e-9)


def all_satisfied_columnar(
    case_results: list[tuple[ComplaintCase, QueryResult]]
) -> bool:
    """Columnar :func:`all_satisfied` for compiled results.

    The tree path materializes every complained-about cell's expression
    tree from the node pool before evaluating it — at serving scale that
    costs as much as executing the query again.  Here all complaint node
    ids over one result are evaluated in a single vectorized discrete
    forward pass (:class:`~repro.relational.compile.CompiledProvenance`
    over the already-frozen pool), with the same per-complaint
    satisfaction predicates applied to the root values.  Prediction
    complaints and tree-mode results fall back to the per-complaint path.

    Used by the async pipeline's drain stage; the serial loop keeps the
    tree-walking reference, and the determinism harness pins the two to
    identical satisfied flags.
    """
    from ..relational.compile import CompiledProvenance

    grouped: dict[int, tuple[QueryResult, list[int], list[Complaint]]] = {}
    for case, result in case_results:
        for complaint in case.complaints:
            if isinstance(complaint, PredictionComplaint) or not result.compiled:
                if not complaint.is_satisfied(result):
                    return False
                continue
            node = _complaint_node(complaint, result)
            if node is None:
                continue  # vacuously satisfied
            entry = grouped.setdefault(id(result), (result, [], []))
            entry[1].append(node)
            entry[2].append(complaint)
    for result, nodes, complaints in grouped.values():
        program = CompiledProvenance(
            result.pool, np.asarray(nodes, dtype=np.int64)
        )
        values = program.evaluate(result.assignment())
        for value, complaint in zip(values, complaints):
            if not _value_satisfied(complaint, float(value)):
                return False
    return True
