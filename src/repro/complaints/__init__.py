"""Complaint model (Definition 3.1 of the paper)."""

from .complaint import (
    Complaint,
    ComplaintCase,
    PredictionComplaint,
    TupleComplaint,
    ValueComplaint,
    all_satisfied,
    all_satisfied_columnar,
)

__all__ = [
    "Complaint",
    "ComplaintCase",
    "PredictionComplaint",
    "TupleComplaint",
    "ValueComplaint",
    "all_satisfied",
    "all_satisfied_columnar",
]
