"""One-pass AST rule engine for the determinism & invariant linter.

The engine parses each file once, walks the tree once, and dispatches
every node to the rules registered for its type.  Rules see a
:class:`FileContext` carrying what a single pass can cheaply maintain:

- parent links (``ctx.parent``) and the enclosing statement
  (``ctx.enclosing_stmt``) for usage-site pattern matching;
- a per-file symbol table — a stack of :class:`Scope` objects with the
  names each scope binds and a syntactic *kind* (``"set"``, ``"dict"``,
  ``"list"``, …) inferred from literals, constructor calls, and
  annotations (``ctx.resolve_kind``, ``ctx.is_module_global``);
- the dotted qualname of the enclosing function/class for reporting and
  baseline keys.

Findings are :class:`Finding` records (file, line, rule id, severity,
message).  Two suppression channels exist, both explicit:

- inline ``# repro: ignore[RULE]`` (or ``ignore[RULE1,RULE2]``) on the
  finding's line or on the first line of its enclosing statement —
  justify it in the trailing comment text;
- a baseline file of ``RULE  path  qualname`` triples
  (:func:`load_baseline`) for bulk grandfathering, ``-`` standing for
  module level.

Project-level checks that need more than one file (GOLD001's manifest
hashes, KNOB001's documentation cross-check) run after the per-file
pass; :func:`run_analysis` stitches everything together and is what
``python -m repro.analysis`` and the self-lint test call.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_IGNORE_RE = re.compile(r"repro:\s*ignore\[([A-Za-z0-9_\s,]+)\]")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where, which rule, how severe, and why."""

    rule: str
    severity: str
    path: str  # posix path relative to the analysis root
    line: int
    col: int
    message: str
    qualname: str = ""  # enclosing def/class chain, "" at module level

    def format(self) -> str:
        where = f" (in {self.qualname})" if self.qualname else ""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.severity}] {self.message}{where}"
        )

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.qualname or "-")

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)


class Rule:
    """Base class: subclasses set ``rule_id``/``severity``/``node_types``
    and implement :meth:`check`, reporting through ``ctx.report``."""

    rule_id: str = ""
    severity: str = SEVERITY_ERROR
    node_types: tuple[type, ...] = ()
    doc: str = ""

    def check(self, node: ast.AST, ctx: "FileContext") -> None:
        raise NotImplementedError


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _kind_of_value(value: ast.AST) -> str | None:
    """Syntactic container kind of an expression, if determinable."""
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, ast.Tuple):
        return "tuple"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return {
            "set": "set",
            "frozenset": "set",
            "dict": "dict",
            "list": "list",
            "sorted": "list",
            "tuple": "tuple",
        }.get(value.func.id)
    return None


def _kind_of_annotation(annotation: ast.AST) -> str | None:
    name = None
    if isinstance(annotation, ast.Name):
        name = annotation.id
    elif isinstance(annotation, ast.Subscript) and isinstance(
        annotation.value, ast.Name
    ):
        name = annotation.value.id
    if name is None:
        return None
    return {
        "set": "set",
        "Set": "set",
        "frozenset": "set",
        "FrozenSet": "set",
        "dict": "dict",
        "Dict": "dict",
        "list": "list",
        "List": "list",
    }.get(name)


class Scope:
    """Names bound in one lexical scope plus their inferred kinds."""

    def __init__(self, node: ast.AST | None, name: str) -> None:
        self.node = node
        self.name = name
        self.bound: set[str] = set()
        self.kinds: dict[str, str] = {}

    def bind(self, name: str, kind: str | None = None) -> None:
        self.bound.add(name)
        if kind is not None:
            previous = self.kinds.get(name)
            if previous is not None and previous != kind:
                self.kinds[name] = "unknown"
            else:
                self.kinds[name] = kind
        elif name in self.kinds:
            # Rebinding with an unknown value poisons the old inference.
            self.kinds[name] = "unknown"


def _binding_names(target: ast.AST) -> Iterator[str]:
    """Names actually bound by an assignment/loop target.  Subscript and
    attribute targets mutate an existing object and bind nothing."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _binding_names(elt)


def _collect_bindings(scope: Scope, body: list[ast.stmt]) -> None:
    """Populate ``scope`` from its statements, without entering nested
    function/class scopes (their bodies bind their own names)."""
    stack: list[ast.stmt] = list(body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            scope.bind(stmt.name, "callable")
            continue
        if isinstance(stmt, ast.Assign):
            kind = _kind_of_value(stmt.value)
            for target in stmt.targets:
                single = isinstance(target, ast.Name)
                for name in _binding_names(target):
                    scope.bind(name, kind if single else None)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            kind = _kind_of_annotation(stmt.annotation)
            if kind is None and stmt.value is not None:
                kind = _kind_of_value(stmt.value)
            scope.bind(stmt.target.id, kind)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            scope.bind(stmt.target.id)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                scope.bind((alias.asname or alias.name).split(".")[0], "module")
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for name in _binding_names(stmt.target):
                scope.bind(name)
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in _binding_names(item.optional_vars):
                        scope.bind(name)
            stack.extend(stmt.body)
        elif isinstance(stmt, (ast.If, ast.While)):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            for handler in stmt.handlers:
                if handler.name:
                    scope.bind(handler.name)
                stack.extend(handler.body)


def _scope_from_node(node: ast.AST) -> Scope:
    if isinstance(node, ast.ClassDef):
        scope = Scope(node, node.name)
        _collect_bindings(scope, node.body)
        return scope
    scope = Scope(node, getattr(node, "name", "<lambda>"))
    args = node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        scope.bind(arg.arg, _kind_of_annotation(arg.annotation) if arg.annotation else None)
    if not isinstance(node, ast.Lambda):
        _collect_bindings(scope, node.body)
    return scope


def scan_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed by ``# repro: ignore[...]``.

    A trailing comment suppresses its own line.  A *standalone* comment
    (nothing but whitespace before the ``#``) suppresses the next code
    line, skipping over blank lines and further comment lines — so a
    multi-line justification block above a statement works as long as
    the ``ignore[...]`` tag appears on any of its lines.
    """
    tagged: list[tuple[int, set[str], bool]] = []  # (line, rules, standalone)
    comment_only: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            standalone = token.line[: token.start[1]].strip() == ""
            if standalone:
                comment_only.add(token.start[0])
            match = _IGNORE_RE.search(token.string)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")} - {""}
                tagged.append((token.start[0], rules, standalone))
    except tokenize.TokenError:  # pragma: no cover - unterminated strings etc.
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _IGNORE_RE.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")} - {""}
                tagged.append((lineno, rules, line.lstrip().startswith("#")))

    lines = source.splitlines()
    suppressed: dict[int, set[str]] = {}
    for lineno, rules, standalone in tagged:
        target = lineno
        if standalone:
            target = lineno + 1
            while target <= len(lines) and (
                target in comment_only or not lines[target - 1].strip()
            ):
                target += 1
        suppressed.setdefault(target, set()).update(rules)
        if standalone:
            suppressed.setdefault(lineno, set()).update(rules)
    return suppressed


class FileContext:
    """Everything a rule may consult while visiting one file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path  # posix, relative to the analysis root
        self.source = source
        self.tree = tree
        self.parents: dict[int, ast.AST] = {}
        self.scope_stack: list[Scope] = []
        self.suppressions = scan_suppressions(source)
        self.findings: list[Finding] = []
        self.n_inline_suppressed = 0
        self._seen: set[tuple] = set()
        self.in_experiments = "/experiments/" in f"/{path}"
        self.is_knob_registry = path.endswith("analysis/knobs.py")

    # -- tree navigation -----------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        # repro: ignore[DET001] — the AST is pinned by ctx.tree for the
        # whole file pass, so node ids cannot be recycled while keyed.
        return self.parents.get(id(node))

    def enclosing_stmt(self, node: ast.AST) -> ast.stmt | None:
        current: ast.AST | None = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self.parents.get(id(current))  # repro: ignore[DET001] — tree pinned by ctx.tree
        return current

    # -- symbol table ----------------------------------------------------------

    def resolve_kind(self, expr: ast.AST) -> str | None:
        """Container kind of an expression: literal inference first, then
        the scope chain for plain names."""
        kind = _kind_of_value(expr)
        if kind is not None:
            return kind
        if isinstance(expr, ast.Name):
            for scope in reversed(self.scope_stack):
                if expr.id in scope.bound:
                    return scope.kinds.get(expr.id, "unknown")
        return None

    def is_module_global(self, name: str) -> bool:
        """True when ``name`` resolves to a module-scope binding."""
        for scope in reversed(self.scope_stack):
            if name in scope.bound:
                return scope is self.scope_stack[0]
        return False

    def qualname(self) -> str:
        return ".".join(
            scope.name for scope in self.scope_stack[1:] if scope.name
        )

    # -- reporting -------------------------------------------------------------

    def report(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        severity: str | None = None,
    ) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        check_lines = {lineno, getattr(node, "end_lineno", lineno)}
        stmt = self.enclosing_stmt(node)
        if stmt is not None:
            check_lines.add(stmt.lineno)
        for line in check_lines:
            if rule.rule_id in self.suppressions.get(line, ()):
                self.n_inline_suppressed += 1
                return
        key = (rule.rule_id, lineno, col, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(
                rule=rule.rule_id,
                severity=severity or rule.severity,
                path=self.path,
                line=lineno,
                col=col,
                message=message,
                qualname=self.qualname(),
            )
        )


def _dispatch(node: ast.AST, ctx: FileContext, table: dict[type, list[Rule]]) -> None:
    for rule in table.get(type(node), ()):
        rule.check(node, ctx)


def _walk(node: ast.AST, ctx: FileContext, table: dict[type, list[Rule]]) -> None:
    for child in ast.iter_child_nodes(node):
        ctx.parents[id(child)] = node  # repro: ignore[DET001] — tree pinned by ctx.tree
        if isinstance(child, _SCOPE_NODES):
            _dispatch(child, ctx, table)
            ctx.scope_stack.append(_scope_from_node(child))
            _walk(child, ctx, table)
            ctx.scope_stack.pop()
        else:
            _dispatch(child, ctx, table)
            _walk(child, ctx, table)


def default_rules() -> list[Rule]:
    from .rules import ALL_RULES

    return [rule() for rule in ALL_RULES]


def _rule_table(rules: list[Rule]) -> dict[type, list[Rule]]:
    table: dict[type, list[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            table.setdefault(node_type, []).append(rule)
    return table


def analyze_source(
    source: str,
    path: str = "<snippet>.py",
    rules: list[Rule] | None = None,
) -> FileContext:
    """Run the per-file pass over a source string (the test fixture entry
    point).  Returns the full :class:`FileContext` for inspection."""
    rules = default_rules() if rules is None else rules
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path, source, tree)
    module_scope = Scope(tree, "")
    _collect_bindings(module_scope, tree.body)
    ctx.scope_stack.append(module_scope)
    _walk(tree, ctx, _rule_table(rules))
    return ctx


@dataclass
class AnalysisReport:
    """Aggregated result of one analyzer run."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    n_inline_suppressed: int = 0
    n_files: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    def summary(self) -> str:
        return (
            f"{len(self.findings)} finding(s) "
            f"({len(self.errors)} error(s), {len(self.warnings)} warning(s)), "
            f"{len(self.baselined)} baselined, "
            f"{self.n_inline_suppressed} inline-suppressed, "
            f"{self.n_files} file(s) scanned"
        )


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """Parse a baseline file of ``RULE path qualname`` triples.

    ``#`` starts a comment (use it to justify every entry); blank lines
    are skipped; ``-`` as qualname stands for module level.
    """
    entries: set[tuple[str, str, str]] = set()
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(
                f"{path}: malformed baseline line {raw!r} "
                "(expected: RULE path qualname)"
            )
        entries.add((parts[0], parts[1], parts[2]))
    return entries


def iter_python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def relative_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_analysis(
    root: Path,
    paths: list[Path] | None = None,
    rules: list[Rule] | None = None,
    baseline: set[tuple[str, str, str]] | None = None,
    manifest_path: Path | None = None,
    include_golden: bool = True,
    include_knob_docs: bool = True,
) -> AnalysisReport:
    """The full analyzer: per-file rules, then project-level checks,
    then baseline filtering.  ``paths`` defaults to ``root/src/repro``."""
    root = Path(root)
    if paths is None:
        default = root / "src" / "repro"
        paths = [default if default.exists() else root]
    rules = default_rules() if rules is None else rules
    table = _rule_table(rules)
    report = AnalysisReport()
    collected: list[Finding] = []

    for file_path in iter_python_files([Path(p) for p in paths]):
        relpath = relative_posix(file_path, root)
        source = file_path.read_text()
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as exc:
            report.parse_errors.append(
                Finding(
                    rule="PARSE",
                    severity=SEVERITY_ERROR,
                    path=relpath,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        ctx = FileContext(relpath, source, tree)
        module_scope = Scope(tree, "")
        _collect_bindings(module_scope, tree.body)
        ctx.scope_stack.append(module_scope)
        _walk(tree, ctx, table)
        collected.extend(ctx.findings)
        report.n_inline_suppressed += ctx.n_inline_suppressed
        report.n_files += 1

    if include_golden:
        from .golden import check_golden

        collected.extend(check_golden(root, manifest_path))
    if include_knob_docs:
        from .rules import check_knob_docs

        collected.extend(check_knob_docs(root))

    baseline = baseline or set()
    for finding in sorted(collected, key=lambda f: f.sort_key):
        if finding.baseline_key in baseline:
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.findings.extend(report.parse_errors)
    return report
