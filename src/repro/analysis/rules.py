"""The initial rule pack: this codebase's real nondeterminism hazards.

Each rule targets a bug class that has actually occurred (or nearly
occurred) in this repo's parallel-correctness history; see
``docs/ANALYSIS.md`` for the catalogue with worked examples.

- DET001 — ``id()``-keyed entries in *shared* (attribute / module-level)
  dicts or sets.  The PR 8 ``_aux_cache`` bug class: once the keyed
  object is garbage collected its id can be reused by a different
  object, silently merging cache entries.  Local memo dicts whose keys
  outlive the traversal (the ``memo[id(node)]`` lowering pattern) are
  allowed — the hazard is containers that outlive the keyed objects.
- DET002 — iteration over sets (hash order) or dict views feeding
  order-sensitive emission (``append``/``add_var``/``add_constraint``/
  ``yield`` …) without an enclosing ``sorted()``.
- DET003 — module-level / global RNG (``np.random.shuffle``,
  ``random.random``, argless ``default_rng()``) outside ``experiments/``
  instead of a threaded ``Generator``.
- DET004 — attribute writes to shared (non-local) objects inside
  callables handed to ``PipelineState``/thread pools/``run_sharded``
  without visible lock protection.
- KNOB001 — direct ``os.environ``/``os.getenv`` reads anywhere but the
  :mod:`repro.analysis.knobs` registry; plus a project check that every
  registered knob is documented in README/docs.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .engine import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    FileContext,
    Finding,
    Rule,
)


def _dotted_name(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``, or None for non-name chains."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return "<expr>"


def _is_shared_container(ctx: FileContext, expr: ast.AST) -> bool:
    """Attribute containers (``self._cache``) and module-level names are
    shared: they outlive any one call, so id-keys in them can dangle."""
    if isinstance(expr, ast.Attribute):
        return True
    if isinstance(expr, ast.Name):
        return ctx.is_module_global(expr.id)
    return False


class Det001IdKeyedSharedContainer(Rule):
    rule_id = "DET001"
    severity = SEVERITY_ERROR
    node_types = (ast.Call,)
    doc = (
        "id()-keyed entry in a shared container: ids can be reused after "
        "garbage collection, silently merging entries (the PR 8 "
        "_aux_cache bug)."
    )

    _KEY_METHODS = {
        "get",
        "setdefault",
        "add",
        "pop",
        "remove",
        "discard",
        "__contains__",
    }

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        if not (
            isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
            and not node.keywords
        ):
            return
        parent = ctx.parent(node)
        container: ast.AST | None = None
        if isinstance(parent, ast.Subscript) and parent.slice is node:
            container = parent.value
        elif (
            isinstance(parent, ast.Compare)
            and parent.left is node
            and len(parent.ops) == 1
            and isinstance(parent.ops[0], (ast.In, ast.NotIn))
        ):
            container = parent.comparators[0]
        elif (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Attribute)
            and parent.func.attr in self._KEY_METHODS
            and node in parent.args
        ):
            container = parent.func.value
        if container is not None and _is_shared_container(ctx, container):
            ctx.report(
                self,
                node,
                f"id({_unparse(node.args[0])}) keys the shared container "
                f"'{_unparse(container)}'; ids are reusable after GC — key "
                "on a pinned identity wrapper (ilp.encode._ExprKey) or a "
                "stable node id instead",
            )


#: Method names whose call order changes the emitted artifact.
ORDER_SENSITIVE_SINKS = frozenset(
    {
        "append",
        "extend",
        "appendleft",
        "add_var",
        "add_constraint",
        "add_dense_constraint",
        "add_row",
        "add_complaints",
        "submit",
        "submit_train",
        "submit_execute",
        "put",
        "write",
        "writerow",
    }
)

#: Consumers that erase iteration order (safe over sets).
ORDER_ERASING_CONSUMERS = frozenset(
    {"set", "frozenset", "sorted", "any", "all", "min", "max", "len", "dict"}
)


def _iteration_kind(ctx: FileContext, expr: ast.AST) -> str | None:
    """Classify an iteration source: "set", "dict-view", or None (safe or
    unknown).  ``sorted(...)`` (and ``list(sorted(...))``) neutralizes."""
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id == "sorted":
            return None
        if expr.func.id in ("list", "tuple") and len(expr.args) == 1:
            return _iteration_kind(ctx, expr.args[0])
        if expr.func.id in ("set", "frozenset"):
            return "set"
        if expr.func.id in ("enumerate", "reversed", "iter") and expr.args:
            return _iteration_kind(ctx, expr.args[0])
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("keys", "values", "items")
        and not expr.args
    ):
        return "dict-view"
    kind = ctx.resolve_kind(expr)
    if kind == "set":
        return "set"
    return None


def _body_has_sink(body: list[ast.stmt]) -> ast.AST | None:
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ORDER_SENSITIVE_SINKS
            ):
                return node
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node
    return None


class Det002UnorderedIteration(Rule):
    rule_id = "DET002"
    severity = SEVERITY_ERROR
    node_types = (ast.For, ast.ListComp, ast.GeneratorExp)
    doc = (
        "Iteration over a set (hash order) or a dict view feeding "
        "order-sensitive emission without an enclosing sorted()."
    )

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.For):
            kind = _iteration_kind(ctx, node.iter)
            if kind == "set" and (sink := _body_has_sink(node.body)):
                ctx.report(
                    self,
                    node.iter,
                    f"iterating the set '{_unparse(node.iter)}' in hash "
                    f"order into order-sensitive '{_unparse(sink)[:60]}'; "
                    "wrap the set in sorted()",
                )
            elif kind == "dict-view" and (sink := _body_has_sink(node.body)):
                ctx.report(
                    self,
                    node.iter,
                    f"dict-view iteration '{_unparse(node.iter)}' flows "
                    f"into order-sensitive '{_unparse(sink)[:60]}'; wrap "
                    "the view in sorted() or justify insertion-order "
                    "determinism with an inline ignore",
                )
            return

        # Comprehensions: a list built from a set inherits hash order;
        # generators are safe when consumed by an order-erasing callable.
        sources = [
            comp.iter
            for comp in node.generators
            if _iteration_kind(ctx, comp.iter) == "set"
        ]
        if not sources:
            return
        if isinstance(node, ast.GeneratorExp):
            parent = ctx.parent(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in ORDER_ERASING_CONSUMERS
                and node in parent.args
            ):
                return
        ctx.report(
            self,
            sources[0],
            f"building an ordered sequence from the set "
            f"'{_unparse(sources[0])}' (hash order); wrap in sorted()",
        )


class Det003GlobalRng(Rule):
    rule_id = "DET003"
    severity = SEVERITY_ERROR
    node_types = (ast.Call,)
    doc = (
        "Module-level / global RNG use outside experiments/: thread a "
        "seeded np.random.Generator instead."
    )

    _NP_SAFE = frozenset(
        {
            "default_rng",
            "SeedSequence",
            "Generator",
            "BitGenerator",
            "PCG64",
            "Philox",
            "SFC64",
            "RandomState",
        }
    )
    _STDLIB_FNS = frozenset(
        {
            "random",
            "randint",
            "randrange",
            "choice",
            "choices",
            "shuffle",
            "sample",
            "uniform",
            "seed",
            "gauss",
            "normalvariate",
            "betavariate",
            "expovariate",
            "getrandbits",
            "triangular",
        }
    )

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.in_experiments:
            return
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        if len(dotted) >= 3 and dotted[0] in ("np", "numpy") and dotted[1] == "random":
            if dotted[2] not in self._NP_SAFE:
                ctx.report(
                    self,
                    node,
                    f"global numpy RNG '{'.'.join(dotted)}' draws from "
                    "shared module state; thread a seeded "
                    "np.random.Generator instead",
                )
                return
        if (
            dotted[-1] in ("default_rng", "RandomState")
            and not node.args
            and not node.keywords
            and (len(dotted) == 1 or dotted[-2] == "random")
        ):
            ctx.report(
                self,
                node,
                f"argless {dotted[-1]}() seeds from OS entropy — every run "
                "differs; pass an explicit seed or SeedSequence child",
            )
            return
        if (
            len(dotted) == 2
            and dotted[0] == "random"
            and dotted[1] in self._STDLIB_FNS
        ):
            ctx.report(
                self,
                node,
                f"stdlib global RNG 'random.{dotted[1]}' is shared mutable "
                "state; thread a seeded np.random.Generator instead",
            )


class Det004UnsyncedSharedWrite(Rule):
    rule_id = "DET004"
    severity = SEVERITY_WARNING
    node_types = (ast.Call,)
    doc = (
        "Attribute write to a shared object inside a callable submitted "
        "to a thread pool without lock or ordered-merge protection."
    )

    _SUBMIT_ATTRS = frozenset({"submit", "submit_train", "submit_execute"})
    _SUBMIT_NAMES = frozenset({"run_sharded"})

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        target: ast.AST | None = None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._SUBMIT_ATTRS
            and node.args
        ):
            target = node.args[0]
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id in self._SUBMIT_NAMES
            and node.args
        ) or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._SUBMIT_NAMES
            and node.args
        ):
            target = node.args[0]
        if target is None:
            return
        fn_node = self._resolve_callable(ctx, target)
        if fn_node is None:
            return
        for write in self._unsynced_writes(fn_node):
            ctx.report(
                self,
                write,
                f"'{_unparse(write)[:60]}' writes a shared attribute inside "
                "a pool-submitted callable without a lock; merge results on "
                "the driver (ordered merge) or hold a lock",
            )

    def _resolve_callable(self, ctx: FileContext, target: ast.AST):
        if isinstance(target, ast.Lambda):
            return target
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is None:
            return None
        for candidate in ast.walk(ctx.tree):
            if (
                isinstance(candidate, (ast.FunctionDef, ast.AsyncFunctionDef))
                and candidate.name == name
            ):
                return candidate
        return None

    def _unsynced_writes(self, fn_node) -> list[ast.AST]:
        body = fn_node.body if not isinstance(fn_node, ast.Lambda) else [fn_node.body]
        local_names: set[str] = set()
        if not isinstance(fn_node, ast.Lambda):
            for stmt in body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Name) and isinstance(
                        sub.ctx, ast.Store
                    ):
                        local_names.add(sub.id)
        writes: list[ast.AST] = []
        locked_ranges: list[tuple[int, int]] = []
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.With, ast.AsyncWith)):
                    for item in sub.items:
                        if "lock" in _unparse(item.context_expr).lower():
                            locked_ranges.append(
                                (sub.lineno, sub.end_lineno or sub.lineno)
                            )
        for stmt in body:
            for sub in ast.walk(stmt):
                targets: list[ast.AST] = []
                if isinstance(sub, ast.Assign):
                    targets = sub.targets
                elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                    targets = [sub.target]
                for tgt in targets:
                    for attr in ast.walk(tgt):
                        if not isinstance(attr, ast.Attribute):
                            continue
                        base = attr.value
                        while isinstance(base, ast.Attribute):
                            base = base.value
                        if (
                            isinstance(base, ast.Name)
                            and base.id in local_names
                        ):
                            continue  # worker-private object
                        line = attr.lineno
                        if any(
                            start <= line <= end
                            for start, end in locked_ranges
                        ):
                            continue
                        writes.append(attr)
        return writes


class Knob001DirectEnvRead(Rule):
    rule_id = "KNOB001"
    severity = SEVERITY_ERROR
    node_types = (ast.Subscript, ast.Call)
    doc = (
        "Direct os.environ / os.getenv access outside the "
        "repro.analysis.knobs registry."
    )

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if ctx.is_knob_registry:
            return
        if isinstance(node, ast.Subscript):
            dotted = _dotted_name(node.value)
            if dotted in (("os", "environ"), ("environ",)):
                self._flag(node, ctx, _unparse(node))
            return
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        if dotted in (("os", "getenv"), ("getenv",)):
            self._flag(node, ctx, _unparse(node.func))
        elif (
            len(dotted) >= 2
            and dotted[-2:] == ("environ", "get")
            and (len(dotted) == 2 or dotted[0] == "os")
        ):
            self._flag(node, ctx, _unparse(node.func))

    def _flag(self, node: ast.AST, ctx: FileContext, what: str) -> None:
        ctx.report(
            self,
            node,
            f"direct environment read '{what}'; declare the knob in "
            "repro.analysis.knobs and read it via knobs.read(name)",
        )


def check_knob_docs(root: Path) -> list[Finding]:
    """KNOB001 project check: every registered knob's env var must appear
    in README.md or docs/*.md (the satellite documentation contract)."""
    from . import knobs

    root = Path(root)
    corpus = ""
    readme = root / "README.md"
    if readme.exists():
        corpus += readme.read_text()
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        for doc in sorted(docs_dir.glob("*.md")):
            corpus += doc.read_text()
    if not corpus:
        # Fixture trees without docs opt out of the documentation check.
        return []
    findings = []
    for knob in knobs.all_knobs():
        if knob.env_var not in corpus:
            findings.append(
                Finding(
                    rule="KNOB001",
                    severity=SEVERITY_ERROR,
                    path="README.md",
                    line=1,
                    col=0,
                    message=(
                        f"registered knob {knob.name!r} ({knob.env_var}) is "
                        "not documented in README.md or docs/*.md"
                    ),
                )
            )
    return findings


ALL_RULES: list[type[Rule]] = [
    Det001IdKeyedSharedContainer,
    Det002UnorderedIteration,
    Det003GlobalRng,
    Det004UnsyncedSharedWrite,
    Knob001DirectEnvRead,
]
