"""Static determinism & invariant analysis for the repro codebase.

``repro.analysis`` enforces the parallel-correctness contract *at lint
time*: every engine generation promises that sharded, async, and
array-lowered paths produce removal orders bit-identical to the golden
references, and the rules here reject the bug classes that have
historically threatened that promise (id()-keyed caches, unordered
iteration feeding emission, global RNG, unsynchronized shared writes,
undeclared env knobs, silent golden-path edits).

Run it as ``python -m repro.analysis`` or ``python -m repro.cli lint``;
see ``docs/ANALYSIS.md`` for the rule catalogue and suppression syntax.
:mod:`repro.analysis.knobs` doubles as the runtime registry every
``REPRO_*`` environment read goes through.
"""

from .engine import (
    AnalysisReport,
    Finding,
    Rule,
    analyze_source,
    load_baseline,
    run_analysis,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "Rule",
    "analyze_source",
    "load_baseline",
    "run_analysis",
]
