"""GOLD001: the golden-path guard.

The repo's parallel-correctness contract is anchored on a handful of
*golden reference* implementations — the tree-walking ILP encoder, the
``linprog`` LP backend, the per-record gradient reference, the
interpreted objective, the serial Rain loop.  Every fast path is pinned
bit-identical to one of them, so silently editing a golden body voids
every equivalence guarantee downstream.

``golden_paths.toml`` is the manifest: one ``[[golden]]`` entry per
reference with its module, qualname, a hash of the function/class body,
a substring that must appear somewhere under ``tests/`` (proof the
reference is still exercised), and a one-line justification.  The check
fails when

- the module or qualname no longer resolves,
- the body hash changed without the manifest being updated (run
  ``python -m repro.analysis --update-golden`` *after* re-running the
  equivalence tests), or
- no test file references the entry's ``test_pattern``.

Hashes are over ``ast.dump`` of the def/class node, so formatting and
comments don't churn them — only semantic edits do.
"""

from __future__ import annotations

import ast
import hashlib
import tomllib
from dataclasses import dataclass
from pathlib import Path

from .engine import SEVERITY_ERROR, Finding

DEFAULT_MANIFEST = Path(__file__).with_name("golden_paths.toml")


@dataclass(frozen=True)
class GoldenEntry:
    module: str
    qualname: str
    sha256: str
    test_pattern: str
    why: str = ""

    @property
    def label(self) -> str:
        return f"{self.module}:{self.qualname}"


def load_manifest(path: Path) -> list[GoldenEntry]:
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    entries = []
    for raw in data.get("golden", []):
        entries.append(
            GoldenEntry(
                module=raw["module"],
                qualname=raw["qualname"],
                sha256=raw.get("sha256", ""),
                test_pattern=raw.get("test_pattern", raw["qualname"].split(".")[-1]),
                why=raw.get("why", ""),
            )
        )
    return entries


def _module_file(root: Path, module: str) -> Path:
    return root / "src" / Path(*module.split(".")).with_suffix(".py")


def _find_node(tree: ast.Module, qualname: str):
    """Resolve ``Class.method`` / ``func`` to its def node, with line."""
    parts = qualname.split(".")
    scope: ast.AST = tree
    for part in parts:
        found = None
        for child in ast.iter_child_nodes(scope):
            if (
                isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                and child.name == part
            ):
                found = child
                break
        if found is None:
            return None
        scope = found
    return scope


def body_hash(root: Path, module: str, qualname: str) -> tuple[str | None, int]:
    """``(sha256-hex, lineno)`` of the named def/class body, or
    ``(None, 0)`` when it doesn't resolve."""
    path = _module_file(root, module)
    if not path.exists():
        return None, 0
    tree = ast.parse(path.read_text(), filename=str(path))
    node = _find_node(tree, qualname)
    if node is None:
        return None, 0
    digest = hashlib.sha256(ast.dump(node).encode()).hexdigest()
    return digest, node.lineno


def _tests_reference(root: Path, pattern: str) -> bool:
    tests_dir = root / "tests"
    if not tests_dir.is_dir():
        return False
    for path in sorted(tests_dir.rglob("*.py")):
        if pattern in path.read_text():
            return True
    return False


def check_golden(root: Path, manifest_path: Path | None = None) -> list[Finding]:
    root = Path(root)
    manifest_path = Path(manifest_path or DEFAULT_MANIFEST)
    if not manifest_path.exists():
        return [
            Finding(
                rule="GOLD001",
                severity=SEVERITY_ERROR,
                path=manifest_path.name,
                line=1,
                col=0,
                message=f"golden manifest {manifest_path} is missing",
            )
        ]
    findings: list[Finding] = []
    for entry in load_manifest(manifest_path):
        module_relpath = _module_file(root, entry.module)
        try:
            relpath = module_relpath.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = module_relpath.as_posix()
        digest, lineno = body_hash(root, entry.module, entry.qualname)
        if digest is None:
            findings.append(
                Finding(
                    rule="GOLD001",
                    severity=SEVERITY_ERROR,
                    path=relpath,
                    line=1,
                    col=0,
                    message=(
                        f"golden path {entry.label} no longer resolves; "
                        "restore it or update golden_paths.toml deliberately"
                    ),
                )
            )
            continue
        if digest != entry.sha256:
            findings.append(
                Finding(
                    rule="GOLD001",
                    severity=SEVERITY_ERROR,
                    path=relpath,
                    line=lineno,
                    col=0,
                    message=(
                        f"golden path {entry.label} body changed without a "
                        "manifest update; re-run the equivalence tests, then "
                        "`python -m repro.analysis --update-golden`"
                    ),
                    qualname=entry.qualname,
                )
            )
        if not _tests_reference(root, entry.test_pattern):
            findings.append(
                Finding(
                    rule="GOLD001",
                    severity=SEVERITY_ERROR,
                    path=relpath,
                    line=lineno,
                    col=0,
                    message=(
                        f"golden path {entry.label} has no test referencing "
                        f"{entry.test_pattern!r}; the reference must stay "
                        "exercised"
                    ),
                    qualname=entry.qualname,
                )
            )
    return findings


def update_manifest(root: Path, manifest_path: Path | None = None) -> list[str]:
    """Rewrite every entry's hash from the current tree; returns the
    labels whose hashes changed."""
    root = Path(root)
    manifest_path = Path(manifest_path or DEFAULT_MANIFEST)
    entries = load_manifest(manifest_path)
    changed: list[str] = []
    lines = [
        "# Golden-path manifest (GOLD001).  Each entry pins a reference",
        "# implementation the fast paths are bit-identical to.  Regenerate",
        "# hashes with `python -m repro.analysis --update-golden` ONLY after",
        "# re-running the equivalence tests on the edited reference.",
    ]
    for entry in entries:
        digest, _ = body_hash(root, entry.module, entry.qualname)
        if digest is None:
            raise FileNotFoundError(
                f"golden path {entry.label} does not resolve in {root}"
            )
        if digest != entry.sha256:
            changed.append(entry.label)
        lines += [
            "",
            "[[golden]]",
            f'module = "{entry.module}"',
            f'qualname = "{entry.qualname}"',
            f'sha256 = "{digest}"',
            f'test_pattern = "{entry.test_pattern}"',
            f'why = "{entry.why}"',
        ]
    manifest_path.write_text("\n".join(lines) + "\n")
    return changed
