"""``python -m repro.analysis`` — the lint entry point.

Exit status: 0 when the tree is clean modulo the checked-in baseline
and inline suppressions; 1 when any error-severity finding survives
(``--strict`` also promotes warnings to failures).  CI runs
``python -m repro.analysis --strict`` before the test matrix.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import (
    SEVERITY_ERROR,
    default_rules,
    load_baseline,
    run_analysis,
)
from .golden import DEFAULT_MANIFEST, update_manifest

DEFAULT_BASELINE = Path(__file__).with_name("baseline.txt")


def _default_root() -> Path:
    """The repo root: cwd when it contains src/repro, else derived from
    this file's location (src/repro/analysis/ -> three levels up)."""
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    return Path(__file__).resolve().parents[3]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "AST-based determinism & invariant linter enforcing the "
            "parallel-correctness contract (rules DET001-DET004, KNOB001, "
            "GOLD001)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files/directories to lint (default: src/repro)"
    )
    parser.add_argument(
        "--root", default=None, help="repo root for relative paths and the "
        "golden/doc checks (default: auto-detected)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"baseline suppression file (default: {DEFAULT_BASELINE.name} "
        "next to the analyzer)",
    )
    parser.add_argument(
        "--manifest", default=None,
        help="golden-path manifest (default: golden_paths.toml next to the "
        "analyzer)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too, not just errors",
    )
    parser.add_argument(
        "--no-golden", action="store_true", help="skip the GOLD001 manifest check"
    )
    parser.add_argument(
        "--no-knob-docs", action="store_true",
        help="skip the KNOB001 documentation cross-check",
    )
    parser.add_argument(
        "--update-golden", action="store_true",
        help="rewrite golden_paths.toml hashes from the current tree "
        "(only after re-running the equivalence tests) and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    root = Path(args.root) if args.root else _default_root()
    manifest = Path(args.manifest) if args.manifest else DEFAULT_MANIFEST

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id} [{rule.severity}] {rule.doc}")
        print("GOLD001 [error] Golden-path body changed without a manifest "
              "update, or reference left untested.")
        return 0

    if args.update_golden:
        changed = update_manifest(root, manifest)
        if changed:
            print(f"updated hashes: {', '.join(changed)}")
        else:
            print("manifest already up to date")
        return 0

    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    baseline = load_baseline(baseline_path)
    report = run_analysis(
        root,
        paths=[Path(p) for p in args.paths] if args.paths else None,
        baseline=baseline,
        manifest_path=manifest,
        include_golden=not args.no_golden,
        include_knob_docs=not args.no_knob_docs,
    )
    for finding in report.findings:
        print(finding.format())
    print(report.summary())

    if args.strict:
        return 1 if report.findings else 0
    return 1 if any(f.severity == SEVERITY_ERROR for f in report.findings) else 0


if __name__ == "__main__":
    sys.exit(main())
