"""Central registry for runtime environment knobs (the KNOB001 contract).

Every ``REPRO_*`` environment variable the runtime honours is declared
here exactly once — name, environment variable, default, documentation,
owning module — and read through :func:`read`.  This module is the only
place allowed to touch ``os.environ``: the static analyzer's KNOB001
rule (:mod:`repro.analysis.rules`) rejects direct ``os.environ`` /
``os.getenv`` access anywhere else in ``src/repro``, and the analyzer's
project check fails if a registered knob is missing from README/docs.

The registry is intentionally dependency-free (stdlib only) so the
linter can import it without dragging in numpy; consumers keep their own
validation and error types (:func:`repro.core.sharding.resolve_workers`
parses and range-checks the raw string this module hands back).
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Knob:
    """One registered environment knob.

    ``name`` is the registry key (and the keyword-argument spelling used
    by the python API), ``env_var`` the environment variable, ``default``
    the raw string used when the variable is unset, ``doc`` a one-line
    description, ``owner`` the module whose resolver consumes the value,
    and ``choices`` an optional closed set of accepted raw values.
    """

    name: str
    env_var: str
    default: str
    doc: str
    owner: str
    choices: tuple[str, ...] | None = None


_REGISTRY: dict[str, Knob] = {}
_BY_ENV: dict[str, Knob] = {}


def register(
    name: str,
    env_var: str,
    default: str,
    doc: str,
    owner: str,
    choices: tuple[str, ...] | None = None,
) -> Knob:
    """Declare a knob.  Duplicate names or env vars are a programming error."""
    if name in _REGISTRY:
        raise ValueError(f"knob {name!r} is already registered")
    if env_var in _BY_ENV:
        raise ValueError(f"env var {env_var!r} is already registered")
    knob = Knob(name, env_var, default, doc, owner, choices)
    _REGISTRY[name] = knob
    _BY_ENV[env_var] = knob
    return knob


def get(name: str) -> Knob:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown knob {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def by_env(env_var: str) -> Knob | None:
    """The knob owning ``env_var``, or ``None`` if unregistered."""
    return _BY_ENV.get(env_var)


def all_knobs() -> list[Knob]:
    """Every registered knob, sorted by name (deterministic iteration)."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def read(name: str) -> str:
    """The raw environment value for ``name`` (default when unset).

    This is the single sanctioned ``os.environ`` read in ``src/repro``;
    validation and typed parsing stay with the owning resolver.
    """
    knob = get(name)
    return os.environ.get(knob.env_var, knob.default)


def knob_table() -> str:
    """Markdown table of every knob, for README/docs generation."""
    rows = [
        "| knob | env var | default | owner | description |",
        "|---|---|---|---|---|",
    ]
    for knob in all_knobs():
        choices = (
            f" (one of {', '.join(knob.choices)})" if knob.choices else ""
        )
        rows.append(
            f"| `{knob.name}` | `{knob.env_var}` | `{knob.default or '(empty)'}` "
            f"| `{knob.owner}` | {knob.doc}{choices} |"
        )
    return "\n".join(rows)


# -- the registry ------------------------------------------------------------
# Declared centrally (not at the consumer) so registration happens at
# import time regardless of which consumer is imported first, and so the
# analyzer can enumerate the full set without importing the runtime.

N_WORKERS = register(
    "n_workers",
    "REPRO_N_WORKERS",
    "0",
    "Worker-pool size for sharded multi-query serving; 0 = serial loop.",
    "repro.core.sharding",
)

ASYNC_PIPELINE = register(
    "async_pipeline",
    "REPRO_ASYNC",
    "0",
    "Enable the async pipelined train/execute Rain loop.",
    "repro.core.sharding",
    choices=("0", "1"),
)

ILP_ENCODER = register(
    "ilp_encoder",
    "REPRO_ILP_ENCODER",
    "compiled",
    "TwoStep ILP encoder: array-lowered 'compiled' or the golden "
    "tree-walking 'tree' reference.",
    "repro.ilp.encode",
    choices=("compiled", "tree"),
)
