"""Use case 2 (Section 2.1): an entity-resolution model as a join condition.

A data scientist trains a matcher over record pairs and uses it as the
join predicate between two business listings.  Dining businesses suddenly
produce zero matches — she *knows* there should be matches — so she files
a complaint that the per-category match count should be higher.  Rain
finds the mislabelled training pairs (a labelling vendor inverted the
label for dining pairs).

Run:  python examples/entity_resolution.py
"""

import numpy as np

from repro import (
    ComplaintCase,
    Database,
    LogisticRegression,
    RainDebugger,
    Relation,
    ValueComplaint,
)
from repro.data import corrupt_labels
from repro.relational import Executor, plan_sql

N_FEATURES = 12


def make_pairs(n, dining_fraction, rng):
    """Similarity feature vectors for candidate record pairs."""
    is_dining = rng.random(n) < dining_fraction
    is_match = rng.random(n) < 0.35
    base = np.where(is_match[:, None], 0.75, 0.25)
    X = np.clip(base + rng.normal(0, 0.16, size=(n, N_FEATURES)), 0, 1)
    # Dining pairs share menu-keyword features: a recognisable subspace.
    X[is_dining, :3] = np.clip(X[is_dining, :3] + 0.18, 0, 1)
    labels = np.where(is_match, "match", "nonmatch").astype(object)
    return X, labels, is_dining


def main() -> None:
    rng = np.random.default_rng(4)

    X_train, y_train, dining_train = make_pairs(700, 0.3, rng)
    # The labelling vendor inverted labels for most dining matches.
    corruption = corrupt_labels(
        y_train, dining_train & (y_train == "match"), "nonmatch", 0.8, rng=5
    )
    print(f"{corruption.n_corrupted} dining 'match' pairs were flipped "
          "to 'nonmatch' by the vendor")

    model = LogisticRegression(("nonmatch", "match"), n_features=N_FEATURES, l2=1e-3)
    model.fit(X_train, corruption.y_corrupted, warm_start=False)

    # Queried pairs: candidate matches between two listing sources.
    X_query, y_query, dining_query = make_pairs(400, 0.3, rng)
    database = Database()
    database.add_relation(
        Relation(
            "CandidatePairs",
            {
                "features": X_query,
                "category": np.where(dining_query, "dining", "other").astype(object),
            },
        )
    )
    database.add_model("matcher", model)

    query = (
        "SELECT category, COUNT(*) FROM CandidatePairs "
        "WHERE predict(*) = 'match' GROUP BY category"
    )
    result = Executor(database).execute(plan_sql(query, database))
    observed = {
        row["category"]: row["count"] for row in result.relation.to_dicts()
    }
    expected_dining = int(np.sum((y_query == "match") & dining_query))
    print(f"matches per category: {observed}  "
          f"(dining should be ≈ {expected_dining})")

    # Complaint on the dining group's count (works even if the group is
    # currently empty — the debugger targets it by group key).
    case = ComplaintCase(
        query,
        [
            ValueComplaint(
                column="count", op="=", value=expected_dining,
                group_key=("dining",),
            )
        ],
    )
    debugger = RainDebugger(
        database, "matcher", X_train, corruption.y_corrupted, [case],
        method="holistic", rng=0,
    )
    report = debugger.run(max_removals=corruption.n_corrupted, k_per_iteration=10)
    print(f"AUCCR against the vendor's flips: "
          f"{report.auccr(corruption.corrupted_indices):.2f}")

    flagged_dining = np.mean(
        [dining_train[i] for i in report.removal_order]
    )
    print(f"{flagged_dining:.0%} of the flagged training pairs are dining pairs")


if __name__ == "__main__":
    main()
