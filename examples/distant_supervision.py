"""Use case 3 (Section 2.1): debugging a programmatic labelling function.

An engineer labels an image dataset with distant supervision (a cheap
labelling rule), trains a classifier, equi-joins a "digit 1" and a
"digit 7" dataset on the predicted label, and is surprised the join has
any results at all — it should be empty.  The complaint "COUNT should be
0" leads Rain to the images the labelling rule got wrong.

(The paper's version uses hot-dog images; we use the synthetic digits so
the example runs offline, the mechanics are identical.)

Run:  python examples/distant_supervision.py
"""

import numpy as np

from repro import (
    ComplaintCase,
    Database,
    RainDebugger,
    Relation,
    SoftmaxRegression,
    ValueComplaint,
)
from repro.data import make_mnist, split_by_digit
from repro.relational import Executor, plan_sql


def main() -> None:
    dataset = make_mnist(n_train=400, n_query=160, seed=3)

    # The "labelling function": trusts a crude heuristic that confuses some
    # 1s for 7s (both are mostly a single stroke).
    y_labeled = dataset.y_train.copy()
    rng = np.random.default_rng(8)
    ones = np.flatnonzero(dataset.y_train == 1)
    flipped = rng.choice(ones, size=int(0.4 * ones.size), replace=False)
    y_labeled[flipped] = 7
    print(f"labelling function mislabelled {flipped.size} of {ones.size} "
          "'1' images as '7'")

    model = SoftmaxRegression(tuple(range(10)), n_features=784, l2=1e-3)
    model.fit(dataset.X_train, y_labeled, warm_start=False, max_iter=150)

    left_images, _ = split_by_digit(dataset.images_query, dataset.y_query, (1,))
    right_images, _ = split_by_digit(dataset.images_query, dataset.y_query, (7,))
    database = Database()
    database.add_relation(
        Relation("Ones", {"features": left_images.reshape(len(left_images), -1)})
    )
    database.add_relation(
        Relation("Sevens", {"features": right_images.reshape(len(right_images), -1)})
    )
    database.add_model("digit", model)

    query = (
        "SELECT COUNT(*) FROM Ones L, Sevens R WHERE predict(L) = predict(R)"
    )
    executor = Executor(database)
    count = executor.execute(plan_sql(query, database)).scalar("count")
    print(f"join of disjoint digit datasets has {count:.0f} rows — "
          "it should have 0!")

    case = ComplaintCase(
        query, [ValueComplaint(column="count", op="=", value=0, row_index=0)]
    )
    debugger = RainDebugger(
        database, "digit", dataset.X_train, y_labeled, [case],
        method="holistic", rng=0,
    )
    report = debugger.run(max_removals=flipped.size, k_per_iteration=10)
    print(f"AUCCR against the labelling-function errors: "
          f"{report.auccr(flipped):.2f}")

    # Retrain without the flagged images and re-run the join.
    keep = np.setdiff1d(np.arange(len(y_labeled)), report.removal_order)
    model.fit(dataset.X_train[keep], y_labeled[keep], warm_start=True, max_iter=150)
    fixed = executor.execute(plan_sql(query, database)).scalar("count")
    print(f"after deleting the flagged images, the join has {fixed:.0f} rows")


if __name__ == "__main__":
    main()
