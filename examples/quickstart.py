"""Quickstart: debug a corrupted spam classifier with one COUNT complaint.

The scenario: a spam model was trained on labels produced by a buggy
labelling rule ("every email mentioning 'http' is spam").  A dashboard
query that counts predicted spam suddenly reports far too many spam
emails; the analyst complains that the count should be the number they
audited by hand.  Rain traces the complaint back to the mislabelled
training emails.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ComplaintCase,
    Database,
    LogisticRegression,
    RainDebugger,
    Relation,
    ValueComplaint,
)
from repro.data import labelling_function_corruption, make_enron


def main() -> None:
    # 1. Data: synthetic Enron-like emails, with a rule-based labelling bug.
    dataset = make_enron(n_train=500, n_query=300, seed=7)
    y_corrupted, corrupted_indices = labelling_function_corruption(
        dataset.y_train, dataset.text_train, "http"
    )
    print(f"training emails: {len(y_corrupted)}, "
          f"mislabelled by the rule: {len(corrupted_indices)}")

    # 2. Train the model on the corrupted labels (this is the bug Rain finds).
    model = LogisticRegression(
        dataset.classes, n_features=dataset.X_train.shape[1], l2=1e-3
    )
    model.fit(dataset.X_train, y_corrupted, warm_start=False)

    # 3. Register the queried relation + model, and run the dashboard query.
    database = Database()
    database.add_relation(
        Relation("emails", {"features": dataset.X_query, "text": dataset.text_query})
    )
    database.add_model("spamclf", model)

    query = "SELECT COUNT(*) FROM emails WHERE predict(*) = 'spam'"
    from repro.relational import Executor, plan_sql

    result = Executor(database).execute(plan_sql(query, database))
    true_count = int(np.sum(dataset.y_query == "spam"))
    print(f"query says {result.scalar('count'):.0f} spam emails; "
          f"the audited ground truth is {true_count}")

    # 4. Complain, and let Rain find the training records to delete.
    case = ComplaintCase(
        query,
        [ValueComplaint(column="count", op="=", value=true_count, row_index=0)],
    )
    debugger = RainDebugger(
        database, "spamclf", dataset.X_train, y_corrupted, [case],
        method="holistic", rng=0,
    )
    report = debugger.run(max_removals=len(corrupted_indices), k_per_iteration=10)

    # 5. Evaluate against the known ground truth.
    curve = report.recall_curve(corrupted_indices)
    print(f"method: {report.method}")
    print(f"deleted {len(report.removal_order)} records over "
          f"{len(report.iterations)} iterations")
    print(f"recall@K = {curve[-1]:.2f}, AUCCR = {report.auccr(corrupted_indices):.2f}")

    # 6. Retrain without the flagged records: the count moves to the truth.
    keep = np.setdiff1d(np.arange(len(y_corrupted)), report.removal_order)
    model.fit(dataset.X_train[keep], y_corrupted[keep], warm_start=True)
    fixed = Executor(database).execute(plan_sql(query, database))
    print(f"after deleting the flagged records the query says "
          f"{fixed.scalar('count'):.0f} (ground truth {true_count})")


if __name__ == "__main__":
    main()
