"""The paper's Figure 1 scenario: CompanyX's churn-cohort monitoring.

A churn model is embedded in a cohort query that joins user profiles with
login activity::

    SELECT COUNT(*) FROM Users U JOIN Logins L ON U.id = L.id
    WHERE L.active_last_month = 1 AND churn.predict(U.features) = 1

A website change breaks the training-data scraper: transactions of
"engaged" users stop being logged, so a systematic slice of the training
set is mislabelled as churned.  The customer's dashboard alert fires
("why did my retained cohort collapse?"), and the on-call engineer files
the alert value as a complaint.

Run:  python examples/ecommerce_churn.py
"""

import numpy as np

from repro import (
    ComplaintCase,
    Database,
    LogisticRegression,
    RainDebugger,
    Relation,
    ValueComplaint,
)
from repro.data import corrupt_labels
from repro.relational import Executor, plan_sql

RETAINED, CHURNED = 0, 1


def make_users(n, rng):
    """User behaviour features: sessions, basket size, support tickets..."""
    engagement = rng.uniform(0, 1, size=n)
    features = np.stack(
        [
            engagement + rng.normal(0, 0.15, n),          # sessions/week
            engagement + rng.normal(0, 0.2, n),           # basket value
            rng.normal(0, 0.3, n) - 0.5 * engagement,     # support tickets
            rng.normal(0, 1.0, n),                        # noise: tenure
            rng.normal(0, 1.0, n),                        # noise: region code
        ],
        axis=1,
    )
    churned = (engagement + rng.normal(0, 0.18, n) < 0.4).astype(int)
    return features, churned, engagement


def main() -> None:
    rng = np.random.default_rng(11)

    # Training data from the (broken) scraping pipeline.
    X_train, y_train, engagement = make_users(800, rng)
    # The website change drops transaction logs for highly engaged users:
    # 60% of the most engaged quartile get mislabelled as churned.
    broken_slice = engagement > np.quantile(engagement, 0.75)
    corruption = corrupt_labels(y_train, broken_slice & (y_train == RETAINED),
                                CHURNED, 0.6, rng=3)
    print(f"scraper bug mislabelled {corruption.n_corrupted} engaged users "
          "as churned")

    model = LogisticRegression((RETAINED, CHURNED), n_features=5, l2=1e-3)
    model.fit(X_train, corruption.y_corrupted, warm_start=False)

    # Queried data: current users + their login activity.
    X_query, y_query, _ = make_users(500, rng)
    database = Database()
    database.add_relation(
        Relation("Users", {"id": np.arange(500), "features": X_query})
    )
    database.add_relation(
        Relation(
            "Logins",
            {
                "id": np.arange(500),
                "active_last_month": (rng.random(500) < 0.8).astype(int),
            },
        )
    )
    database.add_model("churn", model)

    cohort_query = (
        "SELECT COUNT(*) FROM Users U JOIN Logins L ON U.id = L.id "
        "WHERE L.active_last_month = 1 AND churn.predict(U.features) = 1"
    )
    executor = Executor(database)
    reported = executor.execute(plan_sql(cohort_query, database)).scalar("count")

    # The customer's alert: last month the churn cohort was ~X users.
    active = np.asarray(database.relation("Logins").column("active_last_month"))
    expected = int(np.sum((y_query == CHURNED) & (active == 1)))
    print(f"dashboard reports {reported:.0f} likely-churn active users; "
          f"the customer expected ≈ {expected}")

    case = ComplaintCase(
        cohort_query,
        [ValueComplaint(column="count", op="=", value=expected, row_index=0)],
    )
    debugger = RainDebugger(
        database, "churn", X_train, corruption.y_corrupted, [case],
        method="auto", rng=0,
    )
    print(f"Rain's optimizer chose the {debugger.choose_method()!r} approach")
    report = debugger.run(max_removals=corruption.n_corrupted, k_per_iteration=10)

    found = set(report.removal_order) & set(corruption.corrupted_indices.tolist())
    print(f"deleted {len(report.removal_order)} suspects; "
          f"{len(found)} are genuine scraper-bug records "
          f"(AUCCR {report.auccr(corruption.corrupted_indices):.2f})")

    flagged_engagement = engagement[report.removal_order]
    print("mean engagement of flagged records: "
          f"{flagged_engagement.mean():.2f} (population: {engagement.mean():.2f})"
          " — Rain points the engineer straight at the engaged-user slice.")


if __name__ == "__main__":
    main()
