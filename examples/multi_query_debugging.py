"""Section 6.5's scenario: combining complaints from multiple queries.

Two analysts run different GROUP BY queries over the same census-income
model.  One notices the male group's average predicted income is off; the
other notices the 40s age bracket is off.  Each complaint alone is vague —
the Adult preprocessing leaves at most 120 distinct feature vectors, so
thousands of records look identical — but their *combination* pins the
corruption down to the intersection (low-income men in their 40s whose
labels a bad import flipped).

Run:  python examples/multi_query_debugging.py
"""

import numpy as np

from repro import RainDebugger
from repro.experiments.fig8_multiquery import build_adult_setting


def main() -> None:
    setting = build_adult_setting(0.5, n_train=1500, n_query=1000, seed=2)
    print(f"{setting.n_unique_train} unique feature vectors among "
          f"{len(setting.X_train)} training records")
    print(f"{len(setting.corrupted_indices)} labels were flipped by the bad "
          "import (low-income men in their 40s)")

    combos = {
        "gender complaint only": [setting.gender_case],
        "age complaint only": [setting.age_case],
        "both complaints": [setting.gender_case, setting.age_case],
    }
    initial = setting.model.get_params()
    for name, cases in combos.items():
        setting.model.set_params(initial)
        debugger = RainDebugger(
            setting.database, "income", setting.X_train, setting.y_corrupted,
            cases, method="holistic", rng=0,
        )
        report = debugger.run(
            max_removals=len(setting.corrupted_indices), k_per_iteration=10
        )
        print(f"{name:>24}: AUCCR = "
              f"{report.auccr(setting.corrupted_indices):.2f}")

    print("combining complaints narrows the search to the corrupted "
          "subspace — the paper's Figure 8 effect.")


if __name__ == "__main__":
    main()
